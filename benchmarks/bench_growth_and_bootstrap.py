"""Section IV-B -- bootstrap strategies and botnet growth.

Not a numbered figure in the paper, but the design discussion it quantifies is
central to section IV-B: how recruits find the botnet, how much a defender
learns by seizing part of the bootstrap infrastructure, and why random probing
of the onion namespace is hopeless.  The growth benchmark additionally tracks
overlay health (degree bound, diameter, broadcast coverage) while the botnet
doubles in size through recruitment -- the property that lets the paper treat
growth and maintenance with the same DDSR machinery.
"""

from __future__ import annotations

import random

from conftest import emit

from repro.analysis.reporting import render_result_rows
from repro.core.bootstrap import (
    CompositeBootstrap,
    HardcodedPeerList,
    Hotlist,
    OutOfBandChannel,
    RandomProbingEstimate,
)
from repro.core.botnet import OnionBotnet
from repro.core.recruitment import RecruitmentCampaign


def test_bootstrap_strategy_exposure(benchmark):
    """What a defender learns by seizing one piece of each bootstrap mechanism."""

    def run():
        peers = [f"peer{i:03d}aaaaaaaaaaa.onion"[:16] + ".onion" for i in range(100)]
        rng = random.Random(0)

        hardcoded = HardcodedPeerList(peers=list(peers), share_probability=0.5)
        child = hardcoded.child_list(rng)

        hotlist = Hotlist(servers_per_bot=2)
        for index in range(10):
            hotlist.add_server(f"cache-{index}", peers[index * 10: (index + 1) * 10])

        channel = OutOfBandChannel()
        channel.publish(peers[:30])

        probing = RandomProbingEstimate(population=100_000, probes_per_second=10_000)

        return [
            {
                "strategy": "hardcoded peer list (captured bot)",
                "exposed_fraction": round(len(child.peers) / len(peers), 2),
                "notes": "subset shared with probability p=0.5; addresses rotate daily",
            },
            {
                "strategy": "hotlist (one cache seized)",
                "exposed_fraction": round(hotlist.exposure_if_server_seized("cache-3"), 2),
                "notes": "each bot only queries 2 of 10 caches",
            },
            {
                "strategy": "out-of-band channel (read by defender)",
                "exposed_fraction": round(len(channel.latest()) / len(peers), 2),
                "notes": "defender sees exactly what bots see",
            },
            {
                "strategy": "random .onion probing",
                "exposed_fraction": 0.0,
                "notes": f"expected {probing.expected_years:.1e} years to hit one of 100k bots",
            },
        ]

    rows = benchmark(run)
    emit("Bootstrap strategies — defender exposure (section IV-B)", render_result_rows(rows))
    by_strategy = {row["strategy"]: row for row in rows}
    assert by_strategy["random .onion probing"]["exposed_fraction"] == 0.0
    assert by_strategy["hotlist (one cache seized)"]["exposed_fraction"] <= 0.2


def test_botnet_growth_preserves_overlay_health(benchmark):
    """Recruitment doubles the botnet while keeping degree, diameter and coverage."""

    def run():
        net = OnionBotnet(seed=120)
        net.build(16)
        campaign = RecruitmentCampaign(net)
        return campaign.growth_profile(waves=4, per_wave=4), net

    rows, net = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Botnet growth through recruitment (section IV-B)", render_result_rows(rows))
    assert rows[-1]["active_bots"] == 32
    assert all(row["broadcast_coverage"] == 1.0 for row in rows)
    assert all(row["max_degree"] <= net.config.d_max for row in rows)
    assert rows[-1]["diameter"] <= 4
