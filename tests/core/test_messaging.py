"""Tests for C&C message formats and the fixed-size uniform envelope."""

import pytest

from repro.core.errors import MessageError
from repro.core.messaging import (
    ENVELOPE_SIZE,
    CommandMessage,
    Envelope,
    KeyReport,
    MessageKind,
    build_envelope,
    open_envelope,
)
from repro.crypto.elligator import looks_uniform
from repro.crypto.keys import KeyPair

BOTMASTER = KeyPair.from_seed(b"messaging-botmaster")
KEY = b"messaging-symmetric-key-32bytes!"
RANDOMNESS = b"messaging-randomness-0123456789abcdef"


def broadcast(command: str = "noop", **kwargs) -> CommandMessage:
    return CommandMessage(
        kind=MessageKind.COMMAND_BROADCAST,
        command=command,
        issued_at=kwargs.pop("issued_at", 0.0),
        nonce=kwargs.pop("nonce", "n-1"),
        **kwargs,
    )


class TestCommandMessage:
    def test_sign_and_verify(self):
        message = broadcast().signed_by(BOTMASTER)
        assert message.verify_signature(BOTMASTER.public)

    def test_unsigned_fails_verification(self):
        assert not broadcast().verify_signature(BOTMASTER.public)

    def test_wrong_signer_fails(self):
        other = KeyPair.from_seed(b"someone-else")
        message = broadcast().signed_by(other)
        assert not message.verify_signature(BOTMASTER.public)

    def test_serialization_roundtrip_preserves_signature(self):
        message = broadcast(arguments={"target": "simulated"}).signed_by(BOTMASTER)
        restored = CommandMessage.from_bytes(message.to_bytes())
        assert restored.command == "noop"
        assert restored.arguments == {"target": "simulated"}
        assert restored.verify_signature(BOTMASTER.public)

    def test_malformed_bytes_rejected(self):
        with pytest.raises(MessageError):
            CommandMessage.from_bytes(b"\xff\xfe not json")

    def test_expiry(self):
        message = CommandMessage(
            kind=MessageKind.COMMAND_BROADCAST, command="noop", issued_at=0.0, expires_at=100.0
        )
        assert not message.is_expired(50.0)
        assert message.is_expired(101.0)

    def test_addressing_broadcast(self):
        assert broadcast().addressed_to("anyaddress.onion")

    def test_addressing_directed(self):
        message = CommandMessage(
            kind=MessageKind.COMMAND_DIRECTED,
            command="noop",
            targets=["abc.onion"],
        )
        assert message.addressed_to("abc.onion")
        assert not message.addressed_to("xyz.onion")

    def test_group_addressing_is_key_based(self):
        message = CommandMessage(kind=MessageKind.COMMAND_GROUP, command="noop", group="g1")
        assert message.addressed_to("any.onion")

    def test_tampering_with_command_invalidates_signature(self):
        message = broadcast(command="benign").signed_by(BOTMASTER)
        tampered = CommandMessage.from_bytes(message.to_bytes())
        tampered.command = "malicious"
        assert not tampered.verify_signature(BOTMASTER.public)


class TestKeyReport:
    def test_roundtrip_through_botmaster(self):
        report = KeyReport.create(
            bot_key=b"K_B material",
            onion_address="abcdefghijklmnop.onion",
            botmaster_public=BOTMASTER.public,
            nonce=b"nonce-material-16",
            reported_at=42.0,
        )
        assert report.open_with(BOTMASTER) == b"K_B material"

    def test_serialization_roundtrip(self):
        report = KeyReport.create(
            bot_key=b"K_B material",
            onion_address="abcdefghijklmnop.onion",
            botmaster_public=BOTMASTER.public,
            nonce=b"nonce-material-16",
            reported_at=42.0,
        )
        restored = KeyReport.from_bytes(report.to_bytes())
        assert restored.onion_address == report.onion_address
        assert restored.open_with(BOTMASTER) == b"K_B material"

    def test_malformed_report_rejected(self):
        with pytest.raises(MessageError):
            KeyReport.from_bytes(b"not json at all")


class TestEnvelope:
    def test_envelope_has_fixed_size(self):
        short = build_envelope(b"tiny", KEY, RANDOMNESS)
        longer = build_envelope(b"x" * 1500, KEY, RANDOMNESS)
        assert short.size == longer.size == ENVELOPE_SIZE

    def test_roundtrip(self):
        plaintext = broadcast().signed_by(BOTMASTER).to_bytes()
        envelope = build_envelope(plaintext, KEY, RANDOMNESS)
        assert open_envelope(envelope, KEY) == plaintext

    def test_wrong_key_cannot_open(self):
        envelope = build_envelope(b"secret command", KEY, RANDOMNESS)
        with pytest.raises(MessageError):
            open_envelope(envelope, b"some-other-key")

    def test_envelope_looks_uniform(self):
        plaintext = broadcast(command="report-status").signed_by(BOTMASTER).to_bytes()
        envelope = build_envelope(plaintext, KEY, RANDOMNESS)
        assert looks_uniform(envelope.blob)

    def test_broadcast_and_directed_envelopes_indistinguishable_by_size(self):
        broadcast_env = build_envelope(broadcast().to_bytes(), KEY, RANDOMNESS)
        directed = CommandMessage(
            kind=MessageKind.COMMAND_DIRECTED,
            command="noop",
            targets=["abcdefghijklmnop.onion"] * 5,
        )
        directed_env = build_envelope(directed.to_bytes(), KEY, RANDOMNESS)
        assert broadcast_env.size == directed_env.size

    def test_oversized_message_rejected(self):
        with pytest.raises(MessageError):
            build_envelope(b"x" * (ENVELOPE_SIZE + 1), KEY, RANDOMNESS)

    def test_short_randomness_rejected(self):
        with pytest.raises(MessageError):
            build_envelope(b"data", KEY, b"short")

    def test_envelope_validates_blob_size(self):
        with pytest.raises(MessageError):
            Envelope(blob=b"too small")
