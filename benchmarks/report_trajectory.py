"""Render the per-PR speedup trajectory from ``BENCH_graph_kernels.json``.

Every PR appends one entry to the ``runs`` list of the benchmark report
(PR 2 onward); this tool turns that trajectory into

* a markdown table (``BENCH_trajectory.md``) -- one row per workload series,
  one column per PR, and
* a dependency-free hand-rolled SVG line chart (``BENCH_trajectory.svg``)
  of the speedup curves on a log scale.

Run it from the repository root::

    python -m benchmarks.report_trajectory            # writes both artifacts
    python -m benchmarks.report_trajectory --quiet    # files only, no stdout

Smoke entries appended by the bench CLI (labelled ``... (cli smoke)``) are
ignored; only canonical full-scale entries contribute points.

When a telemetry report (``repro.obs`` ``--telemetry`` output) is saved next
to the trajectory JSON as ``BENCH_telemetry.json`` -- or pointed at with
``--telemetry PATH`` -- a "Run telemetry" section is folded into the
markdown: the wave-dispatch histogram, the runner/CSR cache-hit rates and
the headline spans of that instrumented run.
"""

from __future__ import annotations

import argparse
import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Tuple

DEFAULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_graph_kernels.json"

#: Sidecar telemetry report folded into the markdown when present.
DEFAULT_TELEMETRY = "BENCH_telemetry.json"

#: Placeholder-palette series colours (dark-on-light friendly).
_COLORS = (
    "#4063d8", "#389826", "#cb3c33", "#9558b2", "#aa7f39",
    "#0e7490", "#b45309", "#6b7280",
)


def _series_points(runs: List[dict]) -> Dict[str, List[Tuple[int, float]]]:
    """``{series name: [(pr_index, speedup), ...]}`` from canonical runs."""
    series: Dict[str, List[Tuple[int, float]]] = {}

    def add(name: str, index: int, speedup) -> None:
        if speedup is None:
            return
        series.setdefault(name, []).append((index, float(speedup)))

    for index, run in enumerate(runs):
        for row in run.get("rows", []):
            add(f"kernels n={row['n']:,}", index, row.get("speedup"))
        for row in run.get("batched_bfs", []):
            add(f"batched BFS n={row['n']:,}", index, row.get("speedup"))
        soap = run.get("soap_campaign")
        if soap:
            add(f"SOAP campaign n={soap['n']:,}", index, soap.get("speedup"))
        full = run.get("full_closeness")
        if full:
            add(f"full closeness n={full['n']:,}", index, full.get("speedup"))
        ring = run.get("sparse_frontier")
        if ring:
            add(f"ring diameter n={ring['n']:,}", index, ring.get("speedup"))
        full_path = run.get("full_path_metrics")
        if full_path:
            add(
                f"exact path metrics n={full_path['n']:,}",
                index,
                full_path.get("speedup"),
            )
    return series


def load_runs(path: Path = DEFAULT_JSON) -> List[dict]:
    """The canonical (non-smoke) per-PR entries, in trajectory order."""
    report = json.loads(path.read_text())
    return [
        run for run in report.get("runs", [])
        if "cli smoke" not in str(run.get("pr", ""))
    ]


def _hit_rate(hits: int, total: int) -> str:
    return f"{hits}/{total} ({100.0 * hits / total:.1f}%)" if total else "n/a"


def render_telemetry_section(report: dict) -> str:
    """Fold one ``repro.obs`` report into a markdown section.

    Renders the per-level wave-dispatch histogram (how often the engine
    picked dense / sparse-push / saturation-pull), the runner and CSR
    cache-hit rates, and the top wall-clock spans of the instrumented run.
    """
    counters: Dict[str, int] = report.get("counters", {})
    lines = ["## Run telemetry", ""]
    label = report.get("label") or "-"
    meta = report.get("meta", {})
    source = meta.get("scenario") or meta.get("workload") or label
    lines.append(f"From the instrumented run `{source}` (`{label}`):")
    lines.append("")

    dispatch = {
        name.rsplit(".", 1)[1]: value
        for name, value in counters.items()
        if name.startswith("wave.dispatch.")
    }
    if dispatch:
        levels = sum(dispatch.values())
        lines += [
            "### Wave dispatch histogram",
            "",
            "| step kind | levels | share |",
            "|---|---|---|",
        ]
        for kind, value in sorted(dispatch.items(), key=lambda item: -item[1]):
            bar = "█" * max(1, round(20 * value / levels))
            lines.append(f"| {kind} | {value} | `{bar}` {100.0 * value / levels:.1f}% |")
        lines += ["", f"{levels} BFS levels over {counters.get('wave.count', 0)} waves."]
        lines.append("")

    cache_rows = []
    runner_hits = counters.get("runner.cache.hit", 0)
    runner_total = (
        runner_hits
        + counters.get("runner.cache.miss", 0)
        + counters.get("runner.cache.corrupt_evicted", 0)
    )
    if runner_total:
        cache_rows.append(("runner result cache", _hit_rate(runner_hits, runner_total)))
    csr_hits = counters.get("csr.cache.hit", 0) + counters.get("csr.cache.patch", 0)
    csr_total = csr_hits + sum(
        counters.get(name, 0)
        for name in (
            "csr.cache.build",
            "csr.cache.rebuild_overflow",
            "csr.cache.rebuild_patch_rejected",
        )
    )
    if csr_total:
        cache_rows.append(("CSR cache (hit or patched)", _hit_rate(csr_hits, csr_total)))
    scratch_hits = counters.get("wave.scratch.hit", 0)
    scratch_total = scratch_hits + counters.get("wave.scratch.miss", 0)
    if scratch_total:
        cache_rows.append(("wave scratch buffers", _hit_rate(scratch_hits, scratch_total)))
    if cache_rows:
        lines += ["### Cache behaviour", "", "| cache | hit rate |", "|---|---|"]
        lines += [f"| {name} | {rate} |" for name, rate in cache_rows]
        lines.append("")

    spans = report.get("spans", {})
    if spans:
        lines += [
            "### Where the wall-clock went",
            "",
            "| span | count | total s | mean s |",
            "|---|---|---|---|",
        ]
        by_total = sorted(spans.items(), key=lambda item: -item[1]["total_s"])[:8]
        for name, stats in by_total:
            lines.append(
                f"| `{name}` | {stats['count']} | {stats['total_s']:.4f} "
                f"| {stats['mean_s']:.6f} |"
            )
        lines.append("")
    return "\n".join(lines)


def load_telemetry(path: Optional[Path]) -> Optional[dict]:
    """The sidecar telemetry report, or ``None`` when absent/foreign."""
    if path is None or not path.exists():
        return None
    report = json.loads(path.read_text())
    if not isinstance(report, dict) or "obs/report" not in str(report.get("schema", "")):
        return None
    return report


def render_markdown(runs: List[dict], telemetry: Optional[dict] = None) -> str:
    """Markdown table: one row per workload series, one column per PR."""
    labels = [str(run.get("pr", f"run {i}")) for i, run in enumerate(runs)]
    series = _series_points(runs)
    lines = [
        "# Graph-kernel speedup trajectory",
        "",
        "Speedup of the vectorized/adaptive implementation over its baseline",
        "(pure-Python reference, per-source loop, reference SOAP campaign, or",
        "PR 3 wave path, per workload), one column per PR entry in",
        "`BENCH_graph_kernels.json`.",
        "",
        "| workload | " + " | ".join(labels) + " |",
        "|---" * (len(labels) + 1) + "|",
    ]
    for name in sorted(series):
        cells = {index: value for index, value in series[name]}
        row = [name] + [
            f"{cells[i]:.1f}x" if i in cells else "—" for i in range(len(labels))
        ]
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    if telemetry is not None:
        lines.append(render_telemetry_section(telemetry))
    return "\n".join(lines)


def _log_y(value: float, top: float, plot_top: float, plot_bottom: float) -> float:
    """Map a speedup onto the SVG y axis (log10 scale from 1 to ``top``)."""
    span = math.log10(top)
    fraction = math.log10(max(value, 1.0)) / span if span else 0.0
    return plot_bottom - fraction * (plot_bottom - plot_top)


def render_svg(runs: List[dict], *, width: int = 760, height: int = 440) -> str:
    """A dependency-free SVG line chart of every speedup series."""
    labels = [str(run.get("pr", f"run {i}")) for i, run in enumerate(runs)]
    series = _series_points(runs)
    left, right, top, bottom = 64, 240, 36, 48
    plot_w = width - left - right
    plot_h = height - top - bottom
    plot_bottom = top + plot_h
    peak = max((v for pts in series.values() for _, v in pts), default=10.0)
    y_top = 10 ** math.ceil(math.log10(max(peak, 2.0)))

    def x_of(index: int) -> float:
        if len(labels) == 1:
            return left + plot_w / 2
        return left + index * plot_w / (len(labels) - 1)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="system-ui, sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="#ffffff"/>',
        f'<text x="{left}" y="20" font-size="14" font-weight="600" '
        'fill="#111827">Graph-kernel speedup trajectory (log scale)</text>',
    ]
    # Gridlines at decades and 2/5 subdivisions.
    tick = 1.0
    ticks = []
    while tick <= y_top:
        for factor in (1, 2, 5):
            value = tick * factor
            if 1.0 <= value <= y_top:
                ticks.append(value)
        tick *= 10
    for value in sorted(set(ticks)):
        y = _log_y(value, y_top, top, plot_bottom)
        parts.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{left + plot_w}" y2="{y:.1f}" '
            'stroke="#e5e7eb" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{left - 8}" y="{y + 4:.1f}" text-anchor="end" '
            f'fill="#6b7280">{value:g}x</text>'
        )
    for index, label in enumerate(labels):
        x = x_of(index)
        parts.append(
            f'<text x="{x:.1f}" y="{plot_bottom + 20}" text-anchor="middle" '
            f'fill="#374151">{label}</text>'
        )
    for rank, name in enumerate(sorted(series)):
        color = _COLORS[rank % len(_COLORS)]
        points = " ".join(
            f"{x_of(i):.1f},{_log_y(v, y_top, top, plot_bottom):.1f}"
            for i, v in series[name]
        )
        if len(series[name]) > 1:
            parts.append(
                f'<polyline points="{points}" fill="none" stroke="{color}" '
                'stroke-width="2"/>'
            )
        for i, v in series[name]:
            parts.append(
                f'<circle cx="{x_of(i):.1f}" '
                f'cy="{_log_y(v, y_top, top, plot_bottom):.1f}" r="3" '
                f'fill="{color}"/>'
            )
        legend_y = top + 16 * rank
        parts.append(
            f'<rect x="{left + plot_w + 16}" y="{legend_y - 9}" width="10" '
            f'height="10" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{left + plot_w + 32}" y="{legend_y}" '
            f'fill="#111827">{name}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def write_report(
    json_path: Path = DEFAULT_JSON,
    output_dir: Optional[Path] = None,
    telemetry_path: Optional[Path] = None,
) -> Tuple[Path, Path]:
    """Write markdown + SVG next to the JSON (or into ``output_dir``).

    ``telemetry_path`` defaults to the :data:`DEFAULT_TELEMETRY` sidecar
    next to the JSON; when a valid report is there, its section is folded
    into the markdown.
    """
    runs = load_runs(json_path)
    if telemetry_path is None:
        telemetry_path = json_path.parent / DEFAULT_TELEMETRY
    telemetry = load_telemetry(telemetry_path)
    target = output_dir if output_dir is not None else json_path.parent
    markdown_path = target / "BENCH_trajectory.md"
    svg_path = target / "BENCH_trajectory.svg"
    markdown_path.write_text(render_markdown(runs, telemetry))
    svg_path.write_text(render_svg(runs))
    return markdown_path, svg_path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", type=Path, default=DEFAULT_JSON, help="trajectory JSON to read"
    )
    parser.add_argument(
        "--output-dir", type=Path, default=None, help="where to write the artifacts"
    )
    parser.add_argument(
        "--telemetry",
        type=Path,
        default=None,
        help=(
            "repro.obs telemetry report to fold in (default: "
            f"{DEFAULT_TELEMETRY} next to the trajectory JSON, when present)"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="write files without echoing the table"
    )
    args = parser.parse_args(argv)
    if not args.json.exists():
        parser.error(f"no benchmark trajectory at {args.json}")
    if args.telemetry is not None and not args.telemetry.exists():
        parser.error(f"no telemetry report at {args.telemetry}")
    markdown_path, svg_path = write_report(args.json, args.output_dir, args.telemetry)
    if not args.quiet:
        print(markdown_path.read_text())
    print(f"wrote {markdown_path}")
    print(f"wrote {svg_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
