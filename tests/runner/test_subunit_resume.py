"""Sub-unit crash safety: checkpoint journaling, parent watchdog, pressure.

The PR 9 contract, each clause locked by a differential against a clean run:

* a journaled campaign interrupted *inside* a multi-checkpoint exact
  path-metric unit (injected fault, SIGKILL) resumes from its first
  incomplete checkpoint shard -- the journal's ``ckpt`` records replay
  (``runner.journal.ckpt_replayed``) instead of recomputing, and the final
  aggregates are **bit-identical** to an uninterrupted run, under
  backend-auto, forced-fast and the forced popcount-LUT matrix alike;
* an in-parent ``hang`` -- in the serial unit loop or the degraded-serial
  drain -- is bounded by the parent watchdog (``REPRO_TASK_TIMEOUT``):
  :class:`~repro.runner.pool.ParentTimeoutError` within the deadline, the
  journal left resumable;
* filesystem pressure (``ENOSPC`` on journal appends, oversized checkpoint
  states) degrades journaling -- warned and counted -- without perturbing
  the campaign's results;
* corrupt or re-partitioned checkpoint state recomputes, never replays
  wrongly.
"""

from __future__ import annotations

import glob
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.graphs import backend
from repro.obs import telemetry
from repro.runner import faults
from repro.runner.executor import run_scenario
from repro.runner.journal import CampaignJournal
from repro.runner.pool import SHM_PREFIX, ParentTimeoutError, shutdown_pools
from repro.runner.spec import ScenarioSpec

np = pytest.importorskip("numpy")


def _pool_segments():
    return glob.glob(f"/dev/shm/{SHM_PREFIX}*")


@pytest.fixture(autouse=True)
def _clean_plane(monkeypatch):
    """Each test starts with no armed faults, cold pools, and no leaks."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    monkeypatch.delenv(faults.STATE_ENV_VAR, raising=False)
    monkeypatch.delenv("REPRO_PATH_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
    faults.reset()
    shutdown_pools()
    yield
    shutdown_pools()
    faults.reset()
    assert _pool_segments() == []


#: A 2-unit campaign whose every unit runs 4 exact path-metric checkpoints
#: (initial + 3): enough sub-unit structure for mid-unit interruption.
PARAMS = {"n": 300, "checkpoints": 3, "metric_sample": None, "closeness_sample": None}

#: Same campaign kept above the backend auto-threshold (2048) at *every*
#: checkpoint (max_fraction 0.2 leaves 2080 of 2600 nodes), so the
#: ``backend-auto`` matrix point resolves to the fast engine -- and its
#: sub-unit journaling path -- for the whole takedown.
PARAMS_AUTO = {
    "n": 2600,
    "checkpoints": 2,
    "max_fraction": 0.2,
    "metric_sample": None,
    "closeness_sample": None,
}

#: (backend policy override, force the popcount LUT) -- the satellite matrix.
BACKEND_MATRIX = [
    pytest.param((None, False), id="backend-auto"),
    pytest.param(("fast", False), id="backend-fast"),
    pytest.param(("fast", True), id="backend-fast-lut"),
]


@pytest.fixture
def forced_backend(request, monkeypatch):
    policy, lut = request.param
    if lut:
        monkeypatch.setenv(backend.POPCOUNT_LUT_ENV_VAR, "1")
    if policy is None:
        yield
        return
    with backend.using(policy):
        yield


def _run(params=PARAMS, **kwargs):
    return run_scenario("resilience-at-scale", params=params, trials=2, seed=7, **kwargs)


class TestMidUnitResume:
    @pytest.mark.parametrize("forced_backend", BACKEND_MATRIX, indirect=True)
    def test_fault_mid_unit_resumes_bit_identically(self, forced_backend, tmp_path):
        params = PARAMS_AUTO
        clean = _run(params)
        path = tmp_path / "j.jsonl"
        # Units carry 3 checkpoints each (initial + checkpoints=2); the 3rd
        # entry is unit 0's last, leaving two journaled shards behind it.
        faults.install("executor.checkpoint=raise@3")
        with pytest.raises(faults.InjectedFault):
            _run(params, journal=path)
        faults.install("")
        journal = CampaignJournal(path)
        _, units, complete = journal._read()
        assert not complete
        # The interrupted unit's completed checkpoints are on disk.
        assert journal.checkpoints, "no sub-unit checkpoint records journaled"
        with telemetry.collecting() as collector:
            resumed = _run(params, journal=path, resume=True)
        assert resumed.unit_metrics == clean.unit_metrics
        # Proof of re-entry: journaled shards replayed instead of recomputed.
        assert resumed.checkpoints_replayed > 0
        counters = collector.snapshot()["counters"]
        assert counters["runner.journal.ckpt_replayed"] == resumed.checkpoints_replayed

    def test_completed_units_keep_unit_granularity_on_resume(self, tmp_path):
        """Checkpoint records of a *finished* unit are dead weight: the unit
        replays verbatim, its shards never re-enter the scope."""
        path = tmp_path / "j.jsonl"
        with backend.using("fast"):
            clean = _run()
            faults.install("executor.checkpoint=raise@6")  # inside unit 1
            with pytest.raises(faults.InjectedFault):
                _run(journal=path)
            faults.install("")
            _, units, _ = CampaignJournal(path)._read()
            assert 0 in units  # unit 0 completed before the fault
            resumed = _run(journal=path, resume=True)
        assert resumed.unit_metrics == clean.unit_metrics
        assert resumed.replayed == 1

    def test_corrupt_checkpoint_state_recomputes(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with backend.using("fast"):
            clean = _run()
            faults.install("executor.checkpoint=raise@4")
            with pytest.raises(faults.InjectedFault):
                _run(journal=path)
            faults.install("")
            # Corrupt one journaled state payload in place.
            lines = path.read_text().splitlines()
            for index, line in enumerate(lines):
                record = json.loads(line)
                if "ckpt" in record:
                    record["state"]["ecc"] = "!!! not base64 !!!"
                    lines[index] = json.dumps(record)
                    break
            path.write_text("\n".join(lines) + "\n")
            with telemetry.collecting() as collector:
                resumed = _run(journal=path, resume=True)
        assert resumed.unit_metrics == clean.unit_metrics
        assert collector.snapshot()["counters"]["runner.journal.ckpt_invalid"] >= 1

    def test_repartitioned_resume_recomputes_but_stays_exact(
        self, tmp_path, monkeypatch
    ):
        """Changing REPRO_PATH_WORKERS between crash and resume changes the
        shard spans; saved spans no longer match and recompute -- exactness
        is never sacrificed to reuse."""
        path = tmp_path / "j.jsonl"
        with backend.using("fast"):
            clean = _run()
            monkeypatch.setenv("REPRO_PATH_WORKERS", "2")
            faults.install("executor.checkpoint=raise@4")
            with pytest.raises(faults.InjectedFault):
                _run(journal=path)
            faults.install("")
            shutdown_pools()
            monkeypatch.setenv("REPRO_PATH_WORKERS", "1")
            resumed = _run(journal=path, resume=True)
        assert resumed.unit_metrics == clean.unit_metrics
        assert resumed.checkpoints_replayed == 0

    def test_pooled_path_workers_journal_and_replay(self, tmp_path, monkeypatch):
        """The pool fan-out journals per-shard too (run_path_shards hands the
        shard index back), and a same-partition resume replays them."""
        path = tmp_path / "j.jsonl"
        monkeypatch.setenv("REPRO_PATH_WORKERS", "2")
        with backend.using("fast"):
            clean = _run()
            shutdown_pools()
            faults.install("executor.checkpoint=raise@4")
            with pytest.raises(faults.InjectedFault):
                _run(journal=path)
            faults.install("")
            shutdown_pools()
            journal = CampaignJournal(path)
            journal._read()
            spans = {
                span
                for entry in journal.checkpoints.values()
                for span in entry["spans"]
            }
            assert len(spans) > 1, "pool fan-out should journal per-shard spans"
            resumed = _run(journal=path, resume=True)
        assert resumed.unit_metrics == clean.unit_metrics
        assert resumed.checkpoints_replayed > 0


class TestParentWatchdog:
    def test_hang_in_serial_unit_is_bounded(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "2")
        path = tmp_path / "j.jsonl"
        with backend.using("fast"):
            clean = _run()
            faults.install("executor.checkpoint=hang@6")
            started = time.monotonic()
            with telemetry.collecting() as collector:
                with pytest.raises(ParentTimeoutError, match="REPRO_TASK_TIMEOUT"):
                    _run(journal=path)
            elapsed = time.monotonic() - started
            faults.install("")
            assert elapsed < 60, f"hang not bounded: {elapsed:.1f}s"
            counters = collector.snapshot()["counters"]
            assert counters["runner.watchdog.parent_timeout"] == 1
            # The journal survived the timeout and resumes bit-identically.
            monkeypatch.delenv("REPRO_TASK_TIMEOUT")
            resumed = _run(journal=path, resume=True)
        assert resumed.unit_metrics == clean.unit_metrics
        assert resumed.replayed >= 1 or resumed.checkpoints_replayed >= 1

    def test_hang_in_degraded_drain_is_bounded(self, tmp_path, monkeypatch):
        """Kill the pool into the degraded-serial drain, then hang the parent
        mid-drain: the drain's own deadline fires (the PR 8 follow-on)."""
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "2")
        path = tmp_path / "j.jsonl"
        spec = ScenarioSpec(
            name="soap-campaign", params={"n": 30}, grid={}, trials=6, seed=3
        )
        from repro.runner.executor import execute

        baseline = execute(spec, shard_size=1)
        shutdown_pools()
        # Three kills guarantee degradation: a generation's 2 workers can
        # consume at most 2 kill clauses before the broken pool is observed
        # (one respawn), so the respawned generation always eats another
        # kill and exhausts the budget.  The drain then owns whatever is
        # left -- including the last unit, so finish_unit invocation 6 is
        # always mid-drain.
        faults.install(
            "pool.task=kill@1,pool.task=kill@2,pool.task=kill@3,"
            "executor.unit=hang@6"
        )
        started = time.monotonic()
        with telemetry.collecting() as collector:
            with pytest.raises(ParentTimeoutError, match="REPRO_TASK_TIMEOUT"):
                execute(spec, workers=2, shard_size=1, journal=path)
        elapsed = time.monotonic() - started
        faults.install("")
        assert elapsed < 120, f"drain hang not bounded: {elapsed:.1f}s"
        counters = collector.snapshot()["counters"]
        assert counters["runner.degraded_serial"] >= 1
        assert counters["runner.watchdog.parent_timeout"] == 1
        shutdown_pools()
        # The hang fires *after* finish_unit journals its record, so every
        # unit is on disk -- but no complete marker: resume replays all 6.
        _, units, complete = CampaignJournal(path)._read()
        assert len(units) == 6 and not complete
        monkeypatch.delenv("REPRO_TASK_TIMEOUT")
        resumed = execute(spec, shard_size=1, journal=path, resume=True)
        assert resumed.unit_metrics == baseline.unit_metrics
        assert resumed.replayed == 6

    def test_no_timeout_means_no_watchdog_thread(self):
        from repro.runner.pool import parent_deadline

        with parent_deadline("anything") as deadline:
            assert deadline is None

    def test_nested_deadlines_do_not_stack(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "60")
        from repro.runner.pool import parent_deadline

        with parent_deadline("outer") as outer:
            assert outer is not None
            with parent_deadline("inner") as inner:
                assert inner is None
            # The outer deadline survives the nested no-op context.
            assert not outer.fired
        assert not outer.fired


class TestJournalPressure:
    def test_enospc_mid_campaign_degrades_not_crashes(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with backend.using("fast"):
            clean = _run()
            # Invocation 1 is the header; fail the first checkpoint append.
            faults.install("journal.write=oserror@2")
            with telemetry.collecting() as collector:
                result = _run(journal=path)
        assert result.unit_metrics == clean.unit_metrics
        counters = collector.snapshot()["counters"]
        assert counters["runner.journal.write_failed"] == 1
        journal = CampaignJournal(path)
        header, units, complete = journal._read()
        # Degraded after the header: the campaign carried on un-journaled.
        assert header is not None
        assert units == {} and not complete
        assert journal.checkpoints == {}

    def test_oversized_checkpoint_state_falls_back_to_unit_granularity(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_JOURNAL_STATE_LIMIT", "16")
        path = tmp_path / "j.jsonl"
        with backend.using("fast"):
            clean = _run()
            with telemetry.collecting() as collector:
                result = _run(journal=path)
        assert result.unit_metrics == clean.unit_metrics
        assert result.checkpoints_recorded == 0
        assert collector.snapshot()["counters"]["runner.journal.ckpt_oversize"] > 0
        journal = CampaignJournal(path)
        _, units, complete = journal._read()
        # Unit-granularity journaling still works: units landed, no ckpts.
        assert sorted(units) == [0, 1] and complete
        assert journal.checkpoints == {}

    def test_read_fault_on_resume_is_a_config_error(self, tmp_path):
        from repro.core.errors import ConfigError

        path = tmp_path / "j.jsonl"
        with backend.using("fast"):
            _run(journal=path)
            faults.install("journal.read=oserror@1")
            with pytest.raises(ConfigError, match="could not be read"):
                _run(journal=path, resume=True)


class TestSigkillSubprocess:
    """The acceptance scenario: a real SIGKILL mid-unit, resumed via the CLI."""

    def _run_cli(self, tmp_path, *extra, check=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        env.pop(faults.ENV_VAR, None)
        env.pop(faults.STATE_ENV_VAR, None)
        env["REPRO_GRAPH_BACKEND"] = "fast"
        return subprocess.run(
            [
                sys.executable, "-m", "repro.runner", "run",
                "resilience-at-scale",
                "--set", "n=300", "--set", "checkpoints=3",
                "--trials", "2", "--seed", "7", "--quiet",
                "--cache-dir", str(tmp_path / "cache"), "--no-cache",
                *extra,
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )

    def test_sigkill_mid_unit_then_resume_bit_identical(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        killed = self._run_cli(
            tmp_path,
            "--journal", str(journal),
            "--inject-faults", "executor.checkpoint=kill@4",
        )
        assert killed.returncode == -9, (killed.returncode, killed.stderr)
        assert journal.exists()
        reader = CampaignJournal(journal)
        reader._read()
        assert reader.checkpoints, "SIGKILL left no checkpoint records"

        # The inspect subcommand accepts the leftover journal (exit 0).
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        env["REPRO_GRAPH_BACKEND"] = "fast"
        inspect = subprocess.run(
            [sys.executable, "-m", "repro.runner", "journal", str(journal)],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert inspect.returncode == 0, inspect.stderr
        assert "would be accepted" in inspect.stdout
        assert "checkpoint shard" in inspect.stdout

        resumed = self._run_cli(
            tmp_path, "--journal", str(journal), "--resume",
            "--json", str(tmp_path / "resumed.json"),
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "ckpt shard(s) replayed" in resumed.stdout
        clean = self._run_cli(
            tmp_path, "--no-journal", "--json", str(tmp_path / "clean.json"),
        )
        assert clean.returncode == 0, clean.stderr
        resumed_rows = json.loads((tmp_path / "resumed.json").read_text())
        clean_rows = json.loads((tmp_path / "clean.json").read_text())
        assert resumed_rows == clean_rows


class TestFaultSites:
    def test_new_sites_are_registered(self):
        for site in ("journal.write", "journal.read", "executor.checkpoint"):
            (clause,) = faults.parse_spec(f"{site}=raise@1")
            assert clause.site == site
