"""Vectorized CSR graph kernels (the ``fast`` backend).

The pure-Python BFS metrics in :mod:`repro.graphs.metrics` are the readable
reference implementation, but they dominate the runtime of every resilience
sweep once networks grow past a few thousand nodes.  This module provides a
compressed-sparse-row (CSR) mirror of :class:`~repro.graphs.adjacency.
UndirectedGraph` -- two numpy arrays, ``indptr`` and ``indices`` -- plus
vectorized kernels over it:

* frontier-based BFS (distances, eccentricity, closeness),
* batched multi-source BFS: an adaptive multi-word frontier engine.  Each
  node carries ``W`` bit-packed ``uint64`` frontier words, so one wave
  advances up to ``64 * W`` sources together; every level dispatches
  between a dense all-edges step (transposed-ELL in-place OR accumulation,
  or a ``bitwise_or.reduceat`` segment reduction on skew-degreed graphs)
  and a sparse step touching only frontier-incident edges, chosen from the
  live frontier's edge count.  ``W`` is auto-tuned from the graph and the
  source count (overridable via ``REPRO_BFS_BATCH`` /
  ``backend.use_bfs_batch``); the sampled *and full-population* diameter /
  average-shortest-path / closeness estimators all run on this engine,
* exact full-population path metrics: per wave level the per-node row
  popcounts fold into an eccentricity *max* and a level-weighted distance
  *sum* (:func:`accumulate_path_shard`), so one campaign yields the exact
  diameter, per-node/average shortest path length *and* closeness
  (:func:`full_path_metrics`, :func:`path_length_accumulators`); the int64
  accumulators merge exactly across any source split, which is what the
  runner's source-sharded parallel campaigns exploit,
* connected components via min-label propagation with pointer jumping
  (Shiloach--Vishkin style, O(m log n) total work),
* masked component summaries for the Figure 6 simultaneous-deletion sweeps
  (no Python-side subgraph construction per victim set).

Every public function takes the same arguments as its ``metrics`` twin and is
required -- and tested, in ``tests/graphs/test_backend_equivalence.py`` -- to
return **identical** results: exact for integer metrics, bit-identical for
float ones (the float expressions deliberately mirror the reference
implementation's evaluation order, and sampled estimators consume a shared
``random.Random`` in exactly the same way).

The CSR mirror is cached on the graph object, keyed on the graph's mutation
stamp.  On a stamp mismatch the cache first tries to *patch* the previous
snapshot from the graph's bounded mutation delta log
(:data:`repro.graphs.adjacency.DELTA_LOG_LIMIT`): removed nodes become
*ghost* indices masked out by an ``alive`` overlay, new nodes are appended,
and the edge arrays are rebuilt with pure numpy array surgery.  Only when
the log has overflowed -- or ghosts outnumber live nodes -- does it fall
back to the full Python-loop rebuild, so DDSR repair loops and SOAP clone
insertions that interleave small mutation bursts with metric reads pay an
O(m) numpy patch instead of an O(m) Python reconstruction.
"""

from __future__ import annotations

import random
import sys
import time
from itertools import chain, count
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graphs.adjacency import GraphError, UndirectedGraph
from repro.graphs.metrics import _select_nodes
from repro.obs.telemetry import current as _telemetry

NodeId = Hashable

_CSR_CACHE_ATTR = "_csr_cache"

#: Bits per frontier word: one ``uint64`` word carries 64 sources.  Waves may
#: span several words per node (see :func:`wave_batch`), so this is the wave
#: width *granularity*, not a cap.
BFS_BATCH = 64

#: Upper bound on frontier words per node under the ``auto`` wave-width
#: policy: one wave advances at most ``64 * MAX_WAVE_WORDS`` sources.
MAX_WAVE_WORDS = 64

#: Byte budget for one ``(n, words)`` uint64 wave work array under ``auto``;
#: the tuner shrinks the word count on huge graphs so the handful of wave
#: buffers stays cache/RAM-friendly.
WAVE_BUFFER_BUDGET = 64 << 20

#: Dense/sparse crossover: a level advances with the sparse frontier step
#: when the edges incident to the live frontier, times this divisor, fit
#: inside the total edge count (i.e. the dense all-edges gather would touch
#: ``>= SPARSE_EDGE_DIVISOR`` times more edges than the frontier owns).
SPARSE_EDGE_DIVISOR = 12

#: Saturation (pull) crossover: once the bits still missing across the whole
#: wave, scaled by the mean degree and this divisor, fit inside the total
#: edge count, the engine materialises the unsaturated-row set and advances
#: by pulling into those rows only -- the tail levels of a wave stop paying
#: for edges whose endpoints already hold every source bit.
PULL_EDGE_DIVISOR = 4

#: Per-level step selection: ``"adaptive"`` (occupancy-driven, the default)
#: or ``"dense"`` / ``"sparse"`` / ``"pull"`` to force one step kind.  A
#: testing and benchmarking knob -- every mode returns identical results.
WAVE_STEP_MODE = "adaptive"

#: The dense step uses a padded transposed-ELL neighbour table (cached per
#: CSR snapshot) when the padding stays within this factor of the real edge
#: count; skew-degreed graphs (hubs, stars) fall back to the segment-reduce
#: gather so padding can never blow up memory or time.
ELL_PAD_FACTOR = 4

#: A patched CSR keeps ghost (removed-node) indices in its arrays.  Once the
#: ghosts outnumber ``max(GHOST_SLACK, live nodes)`` the next synchronisation
#: rebuilds from scratch to compact the index space.
GHOST_SLACK = 1024

#: Process-wide epoch source for CSR snapshots.  Every snapshot *built from
#: scratch* gets a fresh epoch; snapshots produced by delta patching inherit
#: their base's epoch.  Two snapshots of the same graph therefore share an
#: epoch **iff** they share a compaction lineage (identical index space up
#: to appends), which is what lets the runner pool decide whether a remote
#: shared-memory mirror can be delta-patched or must re-attach.
_EPOCH_COUNTER = count(1)


class CSRGraph:
    """Immutable CSR snapshot of an :class:`UndirectedGraph`.

    ``nodes`` preserves the graph's insertion order (``graph.nodes()``), so
    index ``i`` everywhere below refers to ``nodes[i]``.  Each undirected edge
    appears twice in ``indices`` (once per direction).

    A snapshot produced by incremental patching (:func:`csr_of` after small
    mutations) may contain *ghost* entries: indices whose node has been
    removed from the graph.  ``alive`` is then a boolean mask over the index
    space (``None`` means every index is live).  Ghosts have degree zero --
    no live node keeps an edge to them -- so BFS-style kernels need no
    special handling; kernels that enumerate or count nodes filter through
    the mask.  ``nodes`` keeps a placeholder at ghost positions (the removed
    id), but ghosts are dropped from ``index_of``.
    """

    __slots__ = ("nodes", "index_of", "indptr", "indices", "alive", "epoch", "_ell", "_scratch")

    def __init__(
        self,
        nodes: List[NodeId],
        index_of: Dict[NodeId, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        alive: Optional[np.ndarray] = None,
    ) -> None:
        self.nodes = nodes
        self.index_of = index_of
        self.indptr = indptr
        self.indices = indices
        self.alive = alive
        #: Compaction-lineage stamp: fresh per from-scratch build, inherited
        #: across delta patches (see :data:`_EPOCH_COUNTER`).
        self.epoch = next(_EPOCH_COUNTER)
        #: Lazily built transposed-ELL neighbour table for the dense wave
        #: step (``False`` = not built yet, ``None`` = unsuitable).
        self._ell = False
        #: Reusable dense-step buffers keyed by wave word count, so the
        #: thousands of waves of a full-population campaign do not pay an
        #: allocation-and-fault burst each.
        self._scratch: Dict[int, "_DenseScratch"] = {}

    @property
    def n(self) -> int:
        """Size of the index space (live nodes plus ghosts)."""
        return len(self.nodes)

    @property
    def ghost_count(self) -> int:
        """Number of ghost (removed but not yet compacted) indices."""
        if self.alive is None:
            return 0
        return self.n - int(self.alive.sum())

    def degrees(self) -> np.ndarray:
        """Degree of every index, in index order (ghosts have degree 0)."""
        return np.diff(self.indptr)


def build_csr(graph: UndirectedGraph) -> CSRGraph:
    """Convert ``graph`` into a fresh :class:`CSRGraph` (no caching)."""
    adjacency = graph._adjacency
    nodes = list(adjacency)
    n = len(nodes)
    degrees = np.fromiter(
        (len(adjacency[node]) for node in nodes), dtype=np.int64, count=n
    )
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    total = int(indptr[-1])
    if nodes == list(range(n)):
        # Contiguous integer labels (every generator's output): neighbour ids
        # are already CSR indices, so skip the per-edge dict lookups.
        index_of = {node: node for node in nodes}
        flat = chain.from_iterable(adjacency[node] for node in nodes)
    else:
        index_of = {node: i for i, node in enumerate(nodes)}
        flat = (
            index_of[neighbor]
            for node in nodes
            for neighbor in adjacency[node]
        )
    indices = np.fromiter(flat, dtype=np.int32, count=total)
    return CSRGraph(nodes, index_of, indptr, indices)


def _resolve_delta(
    csr: CSRGraph, ops: Sequence[Tuple], graph: UndirectedGraph
) -> Optional[Tuple[List[NodeId], Dict[NodeId, int], Dict[str, object]]]:
    """Resolve a mutation-log window into an index-space patch.

    The node-id half of delta patching: map the logged node/edge touches
    onto ``csr``'s index space, settling edge presence against the *graph*
    (ground truth), and return ``(nodes, index_of, patch)`` where ``patch``
    is a pure-array recipe consumable by :func:`apply_index_patch` -- also
    remotely, which is how the runner pool ships mutations to its workers'
    shared-memory mirrors without re-pickling whole CSR arrays.

    Returns ``None`` when the window cannot be applied cleanly (a node id
    removed and re-added within the window, log/graph inconsistencies, or
    ghost pressure past the compaction threshold) -- the caller then falls
    back to :func:`build_csr`.
    """
    node_added: List[NodeId] = []
    node_added_set: Set[NodeId] = set()
    node_removed: Set[NodeId] = set()
    touched_edges: Set[frozenset] = set()
    for op in ops:
        kind = op[0]
        if kind == "+e" or kind == "-e":
            touched_edges.add(frozenset((op[1], op[2])))
        elif kind == "+n":
            node = op[1]
            if node in node_removed:
                return None  # removed-then-re-added id: index reuse is hairy
            if node not in node_added_set:
                node_added_set.add(node)
                node_added.append(node)
        else:  # "-n"
            node = op[1]
            if node in node_added_set:
                return None  # added-then-removed within the window
            node_removed.add(node)

    ghost_count = csr.ghost_count + len(node_removed)
    live_count = graph.number_of_nodes()
    if ghost_count > max(GHOST_SLACK, live_count):
        return None  # compact via a full rebuild

    nodes = list(csr.nodes)
    index_of = dict(csr.index_of)
    n_old = csr.n
    if node_added:
        # A logged "+n" may target an id that was already live in the old
        # snapshot (``add_node`` only logs real insertions, but an id ghosted
        # in an *earlier* window can legitimately return): give it a fresh
        # appended index; the stale ghost entry stays masked out.
        appended = [node for node in node_added if node not in index_of]
        if len(appended) != len(node_added):
            return None  # log/graph disagreement: play it safe
        for node in appended:
            index_of[node] = len(nodes)
            nodes.append(node)
    removed_positions: List[int] = []
    for node in node_removed:
        position = index_of.pop(node, None)
        if position is None:
            return None
        removed_positions.append(position)

    removals: List[Tuple[int, int]] = []
    additions: List[Tuple[int, int]] = []
    old_index_of = csr.index_of
    old_indptr = csr.indptr
    old_indices = csr.indices
    for key in touched_edges:
        u, v = tuple(key)
        iu = old_index_of.get(u)
        iv = old_index_of.get(v)
        was_present = False
        if iu is not None and iv is not None:
            segment = old_indices[old_indptr[iu]:old_indptr[iu + 1]]
            was_present = bool((segment == iv).any())
        present_now = graph.has_edge(u, v)
        if present_now and not was_present:
            additions.append((index_of[u], index_of[v]))
        elif was_present and not present_now:
            removals.append((iu, iv))

    patch = {
        "n_old": n_old,
        "n_new": len(nodes),
        "removed": np.asarray(removed_positions, dtype=np.int64),
        "removals": np.asarray(removals, dtype=np.int64).reshape(-1, 2),
        "additions": np.asarray(additions, dtype=np.int64).reshape(-1, 2),
    }
    return nodes, index_of, patch


def resolve_index_patch(
    csr: CSRGraph, ops: Sequence[Tuple], graph: UndirectedGraph
) -> Optional[Dict[str, object]]:
    """The index-space patch alone (for remote mirrors), or ``None``.

    Same resolution and rejection policy as the in-process cache path
    (:func:`_resolve_delta` feeding :func:`_apply_delta`); the runner pool
    broadcasts the returned dict to its workers, which apply it with
    :func:`apply_index_patch` against their shared-memory arrays.
    """
    resolved = _resolve_delta(csr, ops, graph)
    if resolved is None:
        return None
    return resolved[2]


def apply_index_patch(
    indptr: np.ndarray,
    indices: np.ndarray,
    alive: Optional[np.ndarray],
    patch: Dict[str, object],
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Pure-array half of delta patching: new ``(indptr, indices, alive)``.

    Label-free by construction, so the parent cache and every pool worker's
    shared-memory mirror run the *same* surgery from the same patch and land
    on byte-identical arrays: removed positions are masked ghosts, appended
    nodes extend the index space, and the edge arrays are rebuilt with a
    keep-mask plus a stable src-sort.  Returns ``None`` when an edge slated
    for removal is missing from the arrays (snapshot divergence) -- the
    in-process caller rebuilds, a remote mirror must re-attach.
    """
    n_old = int(patch["n_old"])
    n_new = int(patch["n_new"])
    alive = alive.copy() if alive is not None else np.ones(n_old, dtype=bool)
    if n_new > n_old:
        alive = np.concatenate([alive, np.ones(n_new - n_old, dtype=bool)])
    removed = patch["removed"]
    if removed.size:
        alive[removed] = False

    keep = np.ones(indices.size, dtype=bool)
    for iu, iv in patch["removals"].tolist():
        for a, b in ((iu, iv), (iv, iu)):
            start, end = indptr[a], indptr[a + 1]
            slots = np.flatnonzero(indices[start:end] == b)
            if slots.size == 0:
                return None  # log/snapshot disagreement
            keep[start + slots[0]] = False

    src = np.repeat(np.arange(n_old, dtype=np.int64), np.diff(indptr))[keep]
    dst = indices[keep].astype(np.int64, copy=False)
    additions = patch["additions"]
    if additions.size:
        src = np.concatenate([src, additions[:, 0], additions[:, 1]])
        dst = np.concatenate([dst, additions[:, 1], additions[:, 0]])
    order = np.argsort(src, kind="stable")
    new_indices = dst[order].astype(np.int32, copy=False)
    new_degrees = np.bincount(src, minlength=n_new)
    new_indptr = np.zeros(n_new + 1, dtype=np.int64)
    np.cumsum(new_degrees, out=new_indptr[1:])
    return new_indptr, new_indices, alive


def _apply_delta(csr: CSRGraph, ops: Sequence[Tuple], graph: UndirectedGraph) -> Optional[CSRGraph]:
    """Patch ``csr`` into a snapshot of ``graph`` using the mutation log.

    Returns ``None`` when the delta cannot be applied cleanly (see
    :func:`_resolve_delta` / :func:`apply_index_patch`) -- the caller then
    falls back to :func:`build_csr`.  The patched snapshot *inherits* its
    base's epoch: patching never compacts, so the index spaces agree.
    """
    resolved = _resolve_delta(csr, ops, graph)
    if resolved is None:
        return None
    nodes, index_of, patch = resolved
    arrays = apply_index_patch(csr.indptr, csr.indices, csr.alive, patch)
    if arrays is None:
        return None
    indptr, indices, alive = arrays
    result = CSRGraph(nodes, index_of, indptr, indices, alive=alive)
    result.epoch = csr.epoch
    return result


def csr_of(graph: UndirectedGraph) -> CSRGraph:
    """The cached CSR mirror of ``graph``, patched or rebuilt after mutations.

    On a mutation-stamp mismatch the cached snapshot is patched from the
    graph's delta log when the log covers the interval (see
    :func:`_apply_delta`); otherwise the mirror is rebuilt from scratch.
    Either way the log is reset, so it only ever spans "since the cache last
    synchronised".
    """
    stamp = graph.mutation_stamp
    cached = getattr(graph, _CSR_CACHE_ATTR, None)
    tel = _telemetry()
    if cached is not None and cached[0] == stamp:
        if tel.enabled:
            tel.count("csr.cache.hit")
        return cached[1]
    started = time.perf_counter() if tel.enabled else 0.0
    csr: Optional[CSRGraph] = None
    patched = False
    overflowed = False
    if cached is not None:
        ops = graph.delta_since(cached[0])
        if ops is None:
            overflowed = True
        else:
            csr = _apply_delta(cached[1], ops, graph)
            patched = csr is not None
    if csr is None:
        csr = build_csr(graph)
    graph.reset_delta_log()
    setattr(graph, _CSR_CACHE_ATTR, (stamp, csr))
    if tel.enabled:
        # Patch-vs-rebuild provenance: how often the delta log paid off, why
        # it did not (log overflow vs a rejected patch), and the ghost
        # pressure the patched mirror is carrying.
        if cached is None:
            tel.count("csr.cache.build")
        elif patched:
            tel.count("csr.cache.patch")
        elif overflowed:
            tel.count("csr.cache.rebuild_overflow")
        else:
            tel.count("csr.cache.rebuild_patch_rejected")
        tel.gauge("csr.ghosts", csr.ghost_count)
        tel.record_span("csr.sync", time.perf_counter() - started)
    return csr


# ----------------------------------------------------------------------
# Core kernels
# ----------------------------------------------------------------------
def _gather_neighbors(csr: CSRGraph, frontier: np.ndarray) -> np.ndarray:
    """Concatenation of every frontier node's neighbour list (with duplicates)."""
    starts = csr.indptr[frontier]
    counts = csr.indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int32)
    exclusive = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=exclusive[1:])
    positions = np.repeat(starts - exclusive, counts) + np.arange(total, dtype=np.int64)
    return csr.indices[positions]


def bfs_distances(csr: CSRGraph, source_index: int) -> np.ndarray:
    """BFS distances (``-1`` for unreachable) from one node index."""
    distances = np.full(csr.n, -1, dtype=np.int64)
    distances[source_index] = 0
    frontier = np.array([source_index], dtype=np.int64)
    mask = np.zeros(csr.n, dtype=bool)
    depth = 0
    while frontier.size:
        candidates = _gather_neighbors(csr, frontier)
        if candidates.size == 0:
            break
        mask[:] = False
        mask[candidates] = True
        mask &= distances < 0
        frontier = np.flatnonzero(mask)
        depth += 1
        distances[frontier] = depth
    return distances


# ----------------------------------------------------------------------
# Batched multi-source BFS (adaptive multi-word frontier engine)
# ----------------------------------------------------------------------
#: Estimated BFS level count above which the auto-tuner widens waves past
#: one word.  Below it (low-diameter graphs) per-level *work* dominates and
#: the dense step's cost per word is flat, so narrow waves cost nothing and
#: keep the thin early/late levels below the sparse-step crossover; above it
#: (ring/path-like topologies) most levels are thin and the per-level fixed
#: cost dominates, which wide waves amortise across ``64 * words`` sources.
WIDE_WAVE_LEVELS = 48


def _estimated_levels(csr: CSRGraph) -> float:
    """Rough BFS level count: the random-graph diameter ``log n / log(d-1)``."""
    n = max(csr.n, 2)
    mean_degree = csr.indices.size / n
    if mean_degree <= 2.05:
        return float(n)  # path/ring-like: levels scale with n
    import math

    return math.log(n) / math.log(mean_degree - 1.0)


def wave_batch(csr: CSRGraph, total_sources: int) -> int:
    """Sources advanced per wave for a ``total_sources``-source campaign.

    The auto-tuner picks the wave width from the graph and the workload:

    * low-diameter graphs (estimated levels below :data:`WIDE_WAVE_LEVELS`)
      keep single-word waves -- the dense step costs the same per word at
      any width, and narrow frontiers let more levels take the cheap sparse
      step;
    * high-diameter graphs widen up to :data:`MAX_WAVE_WORDS` words so one
      wave carries up to ``64 * MAX_WAVE_WORDS`` sources and the per-level
      fixed cost is paid once for all of them, shrinking only when a
      ``(n, words)`` work array would blow :data:`WAVE_BUFFER_BUDGET`.

    A forced policy (``backend.use_bfs_batch`` / ``REPRO_BFS_BATCH``)
    bypasses the tuner entirely; the kernel rounds it up to whole 64-bit
    words.
    """
    from repro.graphs import backend

    policy = backend.bfs_batch_policy()
    if policy != "auto":
        return int(policy)
    if total_sources <= BFS_BATCH:
        return BFS_BATCH
    if _estimated_levels(csr) < WIDE_WAVE_LEVELS:
        return BFS_BATCH
    words = -(-total_sources // BFS_BATCH)
    # The budget must cover the largest per-word transient a level can
    # materialise: (n,) buffers on ELL-suitable graphs, but the segment
    # fallback and the pull step gather up to one word per *edge* when the
    # degree skew rules the padded table out.
    n = max(csr.n, 1)
    degrees = np.diff(csr.indptr)
    dmax = int(degrees.max()) if csr.n else 0
    transient_rows = n if _ell_suitable(csr.n, dmax, csr.indices.size) else max(
        n, csr.indices.size
    )
    budget_words = max(1, WAVE_BUFFER_BUDGET // (8 * transient_rows))
    return min(words, MAX_WAVE_WORDS, budget_words) * BFS_BATCH


def _ell_suitable(n: int, dmax: int, m: int) -> bool:
    """Whether padding to ``dmax`` neighbour slots stays within budget."""
    return 0 < dmax and n * dmax <= ELL_PAD_FACTOR * m + n


def _ell_of(csr: CSRGraph) -> Optional[np.ndarray]:
    """Cached transposed-ELL neighbour table, or ``None`` when unsuitable.

    Shape ``(dmax, n)`` int32: slot ``j`` of column ``v`` is ``v``'s j-th
    neighbour, padded with ``v`` itself past its degree.  Self-padding is
    semantically free inside the wave -- a node's own frontier bits are
    always a subset of its visited bits, so the ``& ~visited`` mask erases
    the self contribution.  Unsuitable when padding to the maximum degree
    would cost more than :data:`ELL_PAD_FACTOR` times the real edge count
    (skew-degreed graphs keep the segment-reduce dense step).
    """
    cached = csr._ell
    if cached is not False:
        return cached
    n = csr.n
    degrees = np.diff(csr.indptr)
    dmax = int(degrees.max()) if n else 0
    table: Optional[np.ndarray] = None
    if _ell_suitable(n, dmax, csr.indices.size):
        table = np.empty((dmax, n), dtype=np.int32)
        table[:] = np.arange(n, dtype=np.int32)[None, :]
        rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
        slots = np.arange(csr.indices.size, dtype=np.int64) - np.repeat(
            csr.indptr[:-1], degrees
        )
        table[slots, rows] = csr.indices
    csr._ell = table
    return table


def _sparse_step(
    csr: CSRGraph, frontier: np.ndarray, active: np.ndarray, visited: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """One top-down level touching only edges incident to the live frontier.

    Gathers the CSR slices of the ``active`` rows, scatter-ORs their packed
    words into the neighbour rows (sort + segment-reduce, no ufunc.at inner
    loop), masks already-visited bits and returns ``(rows, words)`` for the
    newly reached rows.  Bit-identical to the dense step by construction:
    rows outside the frontier hold all-zero words, so restricting the OR to
    frontier-incident edges drops only zero contributions.
    """
    indptr = csr.indptr
    starts = indptr[active]
    counts = indptr[active + 1] - starts
    total = int(counts.sum())
    word_count = frontier.shape[1]
    if total == 0:
        return _EMPTY_ROWS, np.empty((0, word_count), dtype=np.uint64)
    exclusive = np.zeros(active.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=exclusive[1:])
    positions = np.repeat(starts - exclusive, counts) + np.arange(total, dtype=np.int64)
    targets = csr.indices[positions]
    if word_count == 1 and total >= frontier.shape[0] // 8:
        # Medium-density frontier: a direct scatter-OR over a zeroed row
        # buffer beats sorting the edge list, and the full-row scan it needs
        # is already cheaper than the work just done.
        flat = frontier.reshape(-1)
        out = np.zeros(frontier.shape[0], dtype=np.uint64)
        np.bitwise_or.at(out, targets, np.repeat(flat[active], counts))
        out &= ~visited.reshape(-1)
        rows = np.flatnonzero(out)
        return rows, out[rows].reshape(-1, 1)
    # No stability needed: the segment OR is commutative and the row order
    # comes out sorted either way (introsort is ~2x faster than timsort here).
    order = np.argsort(targets)
    targets = targets[order]
    seg_starts = np.concatenate(([0], np.flatnonzero(np.diff(targets)) + 1))
    rows = targets[seg_starts].astype(np.int64, copy=False)
    if word_count == 1:
        # Single-word waves run on flat views: 2-D ops over one column pay a
        # real per-row toll in the hottest estimator configurations.
        flat = frontier.reshape(-1)
        contrib = np.repeat(flat[active], counts)[order]
        words = np.bitwise_or.reduceat(contrib, seg_starts)
        words &= ~visited.reshape(-1)[rows]
        fresh = words != 0
        return rows[fresh], words[fresh].reshape(-1, 1)
    contrib = np.repeat(frontier[active], counts, axis=0)
    words = np.bitwise_or.reduceat(contrib[order], seg_starts, axis=0)
    np.bitwise_and(words, ~visited[rows], out=words)
    fresh = words.any(axis=1)
    return rows[fresh], words[fresh]


def _pull_step(
    csr: CSRGraph, frontier: np.ndarray, unsat: np.ndarray, visited: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """One bottom-up level: only unsaturated rows pull from their neighbours.

    A row whose visited word(s) already hold every source bit can never gain
    another, so near the end of a wave the engine walks just the unsaturated
    rows' CSR slices (a segment reduction, no sort) instead of all ``m``
    edges.  Bit-identical to the dense step restricted to rows that could
    change -- which is all of them that matter.
    """
    indptr = csr.indptr
    starts = indptr[unsat]
    counts = indptr[unsat + 1] - starts
    occupied = counts > 0
    rows = unsat[occupied]
    counts = counts[occupied]
    total = int(counts.sum())
    word_count = frontier.shape[1]
    if total == 0:
        return _EMPTY_ROWS, np.empty((0, word_count), dtype=np.uint64)
    exclusive = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=exclusive[1:])
    positions = np.repeat(starts[occupied] - exclusive, counts) + np.arange(
        total, dtype=np.int64
    )
    neighbors = csr.indices[positions]
    if word_count == 1:
        gathered = frontier.reshape(-1)[neighbors]
        words = np.bitwise_or.reduceat(gathered, exclusive)
        words &= ~visited.reshape(-1)[rows]
        fresh = words != 0
        return rows[fresh], words[fresh].reshape(-1, 1)
    gathered = frontier[neighbors]
    words = np.bitwise_or.reduceat(gathered, exclusive, axis=0)
    np.bitwise_and(words, ~visited[rows], out=words)
    fresh = words.any(axis=1)
    return rows[fresh], words[fresh]


_EMPTY_ROWS = np.empty(0, dtype=np.int64)


class _DenseScratch:
    """Per-wave reusable ``(n, words)`` buffers for the dense step."""

    __slots__ = ("out", "tmp", "inv", "nonzero", "starts")

    def __init__(self, n: int, words: int) -> None:
        self.out = np.empty((n, words), dtype=np.uint64)
        self.tmp = np.empty((n, words), dtype=np.uint64)
        self.inv = np.empty((n, words), dtype=np.uint64)
        self.nonzero: Optional[np.ndarray] = None
        self.starts: Optional[np.ndarray] = None


def _dense_step(
    csr: CSRGraph,
    frontier: np.ndarray,
    visited: np.ndarray,
    scratch: _DenseScratch,
) -> Tuple[np.ndarray, np.ndarray]:
    """One level over every edge: new word per node = OR of its neighbours'.

    Uses the transposed-ELL table when the snapshot has one -- ``dmax``
    row-gathers accumulated in place, which streams sequential writes and
    amortises each random row lookup over all frontier words -- and falls
    back to the ``bitwise_or.reduceat`` segment reduction on skew-degreed
    snapshots.  Returns the new frontier buffer (``scratch.out``, swapped by
    the caller) already masked by ``~visited``.
    """
    out = scratch.out
    table = _ell_of(csr)
    if table is not None:
        np.take(frontier, table[0], axis=0, out=out)
        tmp = scratch.tmp
        for slot in range(1, table.shape[0]):
            np.take(frontier, table[slot], axis=0, out=tmp)
            np.bitwise_or(out, tmp, out=out)
    else:
        if scratch.nonzero is None:
            degrees = np.diff(csr.indptr)
            scratch.nonzero = np.flatnonzero(degrees > 0)
            scratch.starts = csr.indptr[scratch.nonzero]
        gathered = frontier[csr.indices]
        neighbor_or = np.bitwise_or.reduceat(gathered, scratch.starts, axis=0)
        out[:] = 0
        out[scratch.nonzero] = neighbor_or
    np.invert(visited, out=scratch.inv)
    np.bitwise_and(out, scratch.inv, out=out)
    rows = np.flatnonzero(out.reshape(-1) if out.shape[1] == 1 else out.any(axis=1))
    return rows, out


def _batched_wave(csr: CSRGraph, sources: np.ndarray, counting: bool = False):
    """Advance many BFS sources at once, yielding ``(rows, words)`` per level.

    Source ``j`` of the batch occupies bit ``j % 64`` of frontier word
    ``j // 64`` of each node, so one wave carries ``64 * words`` sources --
    there is no 64-source cap; callers chunk by :func:`wave_batch`.  Every
    level advances *all* sources at once, dispatching between two
    bit-identical steps on live frontier occupancy (or as forced by
    :data:`WAVE_STEP_MODE`):

    * **dense** -- all-edges neighbour OR (transposed-ELL accumulation, or
      segment reduction on skew-degreed snapshots);
    * **sparse** -- touch only the edges incident to the frontier rows
      (CSR slice gather + sort/segment-reduce scatter-OR), restoring
      near-linear total work on high-diameter, thin-frontier topologies.

    The yield for level ``d >= 1`` is ``(rows, words)``: ``words[i]`` has
    bit ``j`` set iff source ``j`` first reached node ``rows[i]`` at
    distance ``d``.  With ``counting=True`` the second element is instead
    the per-row popcount vector (how many sources first reached each row at
    this level), which the aggregate estimators consume without a second
    popcount pass.  ``rows`` ascends; the yielded arrays are fresh copies
    safe to keep across levels.
    """
    batch = sources.size
    if batch == 0:
        return
    n = csr.n
    words = -(-batch // BFS_BATCH)
    tel = _telemetry()
    # Hoisted so the disabled path pays one attribute check per *level*, not
    # a collector call; everything below is observational only (no branch of
    # the wave may ever depend on a collected value).
    rec = tel.enabled
    if rec:
        tel.count("wave.count")
        tel.count("wave.sources", int(batch))
        tel.count(f"wave.words.{words}")
        tel.gauge("wave.popcount_backend", _POPCOUNT_BACKEND)
    bits = np.left_shift(
        np.uint64(1), np.arange(batch, dtype=np.uint64) & np.uint64(63)
    )
    word_col = np.arange(batch, dtype=np.int64) >> 6
    visited = np.zeros((n, words), dtype=np.uint64)
    np.bitwise_or.at(visited, (sources, word_col), bits)
    frontier = visited.copy()
    active = np.unique(sources)
    if csr.indices.size == 0:
        return
    indptr = csr.indptr
    m = csr.indices.size
    mean_degree = m / n
    scratch: Optional[_DenseScratch] = None
    flat = words == 1
    # Saturation bookkeeping: a full row can never gain a bit, so the wave
    # (a) stops outright once every (source, node) pair is visited -- no
    # final all-edges step just to discover an empty frontier -- and (b)
    # switches to the pull step over the unsaturated rows once few bits are
    # missing.  ``full_row`` is the all-sources-visited word pattern.
    full_row = np.full(words, np.uint64(2 ** 64 - 1), dtype=np.uint64)
    if batch % BFS_BATCH:
        full_row[-1] = np.uint64((1 << (batch % BFS_BATCH)) - 1)
    remaining = n * batch - int(_row_popcounts(visited[active]).sum())
    unsat: Optional[np.ndarray] = None
    sparse_limit = m // SPARSE_EDGE_DIVISOR
    try:
        while True:
            # Summing frontier degrees costs O(active); skip it when the
            # active count alone already rules the sparse step out (every
            # row contributes at least one edge or the step is a no-op).
            if active.size > sparse_limit:
                frontier_edges = m
            else:
                frontier_edges = int((indptr[active + 1] - indptr[active]).sum())
                if frontier_edges == 0:
                    return
            mode = WAVE_STEP_MODE
            if mode == "adaptive":
                if frontier_edges * SPARSE_EDGE_DIVISOR <= m:
                    mode = "sparse"
                elif remaining * mean_degree * PULL_EDGE_DIVISOR <= m:
                    mode = "pull"
                else:
                    mode = "dense"
            if mode == "dense":
                if scratch is None:
                    # Checked out for this generator's lifetime, so two
                    # interleaved waves on one snapshot never share buffers.
                    scratch = csr._scratch.pop(words, None)
                    if scratch is None:
                        scratch = _DenseScratch(n, words)
                        if rec:
                            tel.count("wave.scratch.miss")
                    elif rec:
                        tel.count("wave.scratch.hit")
                rows, new_frontier = _dense_step(csr, frontier, visited, scratch)
                if rows.size == 0:
                    return
                scratch.out = frontier  # recycle the old buffer next level
                frontier = new_frontier
                if flat:
                    step_words = frontier.reshape(-1)[rows]
                    if 2 * rows.size < n:
                        visited.reshape(-1)[rows] |= step_words
                    else:
                        visited |= frontier
                    step_words = step_words.reshape(-1, 1)
                elif 2 * rows.size < n:
                    step_words = frontier[rows]
                    visited[rows] |= step_words
                else:
                    visited |= frontier
                    step_words = frontier[rows]
            else:
                if mode == "pull":
                    if flat:
                        visited_1d = visited.reshape(-1)
                        if unsat is None:
                            unsat = np.flatnonzero(visited_1d != full_row[0])
                        else:
                            unsat = unsat[visited_1d[unsat] != full_row[0]]
                    elif unsat is None:
                        unsat = np.flatnonzero((visited != full_row).any(axis=1))
                    else:
                        unsat = unsat[(visited[unsat] != full_row).any(axis=1)]
                    rows, step_words = _pull_step(csr, frontier, unsat, visited)
                else:
                    rows, step_words = _sparse_step(csr, frontier, active, visited)
                if flat:
                    frontier_1d = frontier.reshape(-1)
                    frontier_1d[active] = 0
                    if rows.size == 0:
                        return
                    words_1d = step_words.reshape(-1)
                    frontier_1d[rows] = words_1d
                    visited.reshape(-1)[rows] |= words_1d
                else:
                    frontier[active] = 0
                    if rows.size == 0:
                        return
                    frontier[rows] = step_words
                    visited[rows] |= step_words
            active = rows
            popcounts = _row_popcounts(step_words)
            if rec:
                tel.count("wave.levels")
                tel.count("wave.dispatch." + mode)
                # Frontier density falls out of the pair: newly-reached rows
                # summed per level over the row slots a dense level scans.
                tel.count("wave.frontier_rows", int(rows.size))
                tel.count("wave.node_levels", n)
            yield rows, (popcounts if counting else step_words)
            remaining -= int(popcounts.sum())
            if remaining == 0:
                return
    finally:
        if scratch is not None:
            csr._scratch[words] = scratch


def _le_bytes(words: np.ndarray) -> np.ndarray:
    """Packed words as a little-endian ``(rows, 8 * word_count)`` byte view.

    Byte ``b`` of a row covers source bits ``8b .. 8b+7``; big-endian hosts
    byteswap first (a copy, but those hosts are rare and correctness beats
    zero-copy there).
    """
    if sys.byteorder == "big":  # pragma: no cover - exercised on s390x etc.
        words = words.byteswap()
    words = np.ascontiguousarray(words)
    return words.view(np.uint8).reshape(words.shape[0], 8 * words.shape[1])


def _frontier_bits(words: np.ndarray, batch: int) -> np.ndarray:
    """``(rows, batch)`` 0/1 matrix of a packed level's per-source bits."""
    return np.unpackbits(_le_bytes(words), axis=1, bitorder="little")[:, :batch]


#: ``(256, 8)`` lookup: row ``b`` holds the bits of byte value ``b``; used to
#: turn per-byte histograms into per-source popcounts without unpacking.
_BYTE_BITS = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1, bitorder="little"
).astype(np.int64)


def _frontier_bit_counts(words: np.ndarray, batch: int) -> np.ndarray:
    """Per-source popcount of a packed level: ``(batch,)`` int64 counts.

    One byte-value histogram per (transposed, contiguous) byte column folded
    through the :data:`_BYTE_BITS` table -- ~4x cheaper than unpacking every
    row to bits when many rows are live.
    """
    byte_columns = np.ascontiguousarray(_le_bytes(words).T)
    counts = np.empty(BFS_BATCH * words.shape[1], dtype=np.int64)
    for column in range(byte_columns.shape[0]):
        histogram = np.bincount(byte_columns[column], minlength=256)
        counts[8 * column:8 * (column + 1)] = histogram @ _BYTE_BITS
    return counts[:batch]


#: Per-byte popcount table backing the LUT row-popcount path (the only path
#: on numpy < 2.0, and force-selectable for testing on numpy >= 2.0).
_BYTE_POPCOUNT = _BYTE_BITS.sum(axis=1)

#: Set to ``1`` (or ``true``/``yes``/``on``) to force the byte-LUT popcount
#: path even when ``np.bitwise_count`` exists -- the CI job that keeps the
#: numpy < 2.0 fallback honest runs the wave-engine matrix under this flag.
#: The canonical definition (and numpy-free parser) live in
#: :mod:`repro.graphs.backend` so the runner's cache keys can cover it.
POPCOUNT_LUT_ENV_VAR = "REPRO_FORCE_POPCOUNT_LUT"


def _row_popcounts_lut(words: np.ndarray) -> np.ndarray:
    """Per-row popcount of a packed level via the byte lookup table."""
    return _BYTE_POPCOUNT[_le_bytes(words)].sum(axis=1)


if hasattr(np, "bitwise_count"):

    def _row_popcounts_native(words: np.ndarray) -> np.ndarray:
        """Per-row popcount of a packed level via ``np.bitwise_count``."""
        return np.bitwise_count(words).sum(axis=1, dtype=np.int64)

else:  # pragma: no cover - numpy < 2.0
    _row_popcounts_native = None


def configure_popcount() -> str:
    """(Re)select the row-popcount kernel; returns ``"native"`` or ``"lut"``.

    Reads :data:`POPCOUNT_LUT_ENV_VAR` and rebinds the module-level
    ``_row_popcounts`` used by every wave.  Called once at import; tests and
    long-lived processes that flip the variable call it again.  An
    unrecognised value raises :class:`~repro.core.errors.ConfigError` rather
    than silently picking a path.
    """
    global _row_popcounts, _POPCOUNT_BACKEND
    from repro.graphs import backend

    if backend.popcount_lut_forced() or _row_popcounts_native is None:
        _row_popcounts = _row_popcounts_lut
        _POPCOUNT_BACKEND = "lut"
    else:
        _row_popcounts = _row_popcounts_native
        _POPCOUNT_BACKEND = "native"
    return _POPCOUNT_BACKEND


#: The active per-row popcount kernel (rebindable via
#: :func:`configure_popcount`); both choices return identical int64 counts.
#: ``_POPCOUNT_BACKEND`` names the selection for the telemetry layer.
_row_popcounts = _row_popcounts_lut
_POPCOUNT_BACKEND = "lut"
configure_popcount()


def _batched_level_counts(csr: CSRGraph, sources: np.ndarray) -> List[np.ndarray]:
    """Per-level newly-visited counts for one wave of BFS sources.

    Returns one ``(B,)`` int64 array per BFS level ``d >= 1``: entry ``j`` is
    the number of nodes source ``j`` first reached at distance ``d``.
    Everything the sampled estimators need (eccentricity, distance sums,
    reachable counts) derives from these counts, so distances are never
    materialised.
    """
    batch = sources.size
    return [
        _frontier_bit_counts(words, batch)
        for _rows, words in _batched_wave(csr, sources)
    ]


def _batched_source_indices(csr: CSRGraph, nodes: Sequence[NodeId]) -> np.ndarray:
    index_of = csr.index_of
    return np.fromiter(
        (index_of[node] for node in nodes), dtype=np.int64, count=len(nodes)
    )


def bfs_distances_batch(csr: CSRGraph, sources: np.ndarray) -> np.ndarray:
    """BFS distances (``-1`` unreachable) from many sources: a ``(B, n)`` matrix.

    Runs the same multi-word wave as :func:`_batched_level_counts` in chunks
    of :func:`wave_batch` sources, materialising per-level distance rows.
    Use the count-based estimators when only aggregates are needed; this is
    the kernel behind :func:`shortest_path_lengths_from_many`.
    """
    sources = np.asarray(sources, dtype=np.int64)
    total = sources.size
    n = csr.n
    distances = np.full((total, n), -1, dtype=np.int32)
    chunk_size = wave_batch(csr, total) if total else BFS_BATCH
    for offset in range(0, total, chunk_size):
        chunk = sources[offset:offset + chunk_size]
        batch = chunk.size
        rows_matrix = distances[offset:offset + batch]
        rows_matrix[np.arange(batch), chunk] = 0
        for depth, (rows, words) in enumerate(_batched_wave(csr, chunk), start=1):
            row_pos, source_bit = np.nonzero(_frontier_bits(words, batch))
            rows_matrix[source_bit, rows[row_pos]] = depth
    return distances


def shortest_path_lengths_from_many(
    graph: UndirectedGraph, sources: Sequence[NodeId]
) -> List[Dict[NodeId, int]]:
    """Batched :func:`shortest_path_lengths_from`: one distance dict per source."""
    csr = csr_of(graph)
    for source in sources:
        if source not in csr.index_of:
            raise GraphError(f"source {source!r} not in graph")
    if not sources:
        return []
    distances = bfs_distances_batch(csr, _batched_source_indices(csr, sources))
    nodes = csr.nodes
    result = []
    for row in distances:
        reached = np.flatnonzero(row >= 0)
        result.append({nodes[int(i)]: int(row[i]) for i in reached})
    return result


def _chunked_level_counts(
    csr: CSRGraph, nodes: Sequence[NodeId]
) -> Iterable[Tuple[int, List[np.ndarray]]]:
    """Yield ``(chunk_size, per-level counts)`` for sources in wave chunks."""
    indices = _batched_source_indices(csr, nodes)
    chunk_size = wave_batch(csr, indices.size) if indices.size else BFS_BATCH
    for offset in range(0, indices.size, chunk_size):
        chunk = indices[offset:offset + chunk_size]
        yield chunk.size, _batched_level_counts(csr, chunk)


def _component_labels(
    n: int, indptr: np.ndarray, indices: np.ndarray
) -> np.ndarray:
    """Component label (minimum member index) for every node.

    Min-label propagation over the CSR neighbour segments
    (``np.minimum.reduceat``) alternated with pointer jumping; converges in
    O(log n) outer rounds even on path/ring graphs.
    """
    labels = np.arange(n, dtype=np.int64)
    if n == 0 or indices.size == 0:
        return labels
    degrees = np.diff(indptr)
    nonzero = np.flatnonzero(degrees > 0)
    starts = indptr[nonzero]
    while True:
        neighbor_min = np.minimum.reduceat(labels[indices], starts)
        proposal = labels.copy()
        proposal[nonzero] = np.minimum(labels[nonzero], neighbor_min)
        while True:
            hopped = proposal[proposal]
            if np.array_equal(hopped, proposal):
                break
            proposal = hopped
        if np.array_equal(proposal, labels):
            return labels
        labels = proposal


def component_labels(graph: UndirectedGraph) -> np.ndarray:
    """Component label per node, aligned with ``graph.nodes()`` order.

    On a delta-patched CSR the ghost (removed-node) rows are masked out, so
    the array always has exactly ``graph.number_of_nodes()`` entries.  Labels
    are minimum member *indices* into the mirror's index space: equal label
    means same component; the values themselves are not node ids.
    """
    return _live_labels(graph)


# ----------------------------------------------------------------------
# metrics.py twins
# ----------------------------------------------------------------------
def shortest_path_lengths_from(graph: UndirectedGraph, source: NodeId) -> Dict[NodeId, int]:
    """BFS distances from ``source`` to every reachable node (including itself)."""
    csr = csr_of(graph)
    if source not in csr.index_of:
        raise GraphError(f"source {source!r} not in graph")
    distances = bfs_distances(csr, csr.index_of[source])
    reached = np.flatnonzero(distances >= 0)
    nodes = csr.nodes
    return {nodes[int(i)]: int(distances[i]) for i in reached}


def closeness_centrality(graph: UndirectedGraph, node: NodeId) -> float:
    """Normalised closeness centrality of ``node`` (reference-identical)."""
    n = graph.number_of_nodes()
    if n <= 1:
        return 0.0
    csr = csr_of(graph)
    if node not in csr.index_of:
        raise GraphError(f"source {node!r} not in graph")
    distances = bfs_distances(csr, csr.index_of[node])
    reached = distances >= 0
    reachable = int(reached.sum()) - 1
    if reachable == 0:
        return 0.0
    total = int(distances[reached].sum())
    closeness = reachable / total
    return closeness * (reachable / (n - 1))


def average_closeness_centrality(
    graph: UndirectedGraph,
    *,
    sample_size: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> float:
    """Mean closeness centrality over all nodes (or a deterministic sample).

    All sources run as bit-packed multi-word BFS waves; the per-source
    closeness values are reassembled from per-level visit counts with exactly
    the reference's integer-then-float arithmetic (and summed in the same
    source order), so the result stays bit-identical.

    The full-population case (``sample_size=None`` or covering every node)
    additionally exploits distance symmetry: when *every* node is a source,
    ``sum_u d(u, v)`` over all sources equals node ``v``'s own distance sum,
    so the per-source column counts collapse to per-node row popcounts
    accumulated as the waves advance -- same integers, same node order, same
    float arithmetic, at a fraction of the counting cost.  This is what makes
    *exact* 100k-node closeness practical rather than merely sampled.
    """
    nodes = _select_nodes(graph, sample_size, rng)
    if not nodes:
        return 0.0
    n = graph.number_of_nodes()
    if n <= 1:
        return 0.0
    csr = csr_of(graph)
    if len(nodes) == n:
        return _full_population_closeness(csr, n)
    values: List[float] = []
    for batch, level_counts in _chunked_level_counts(csr, nodes):
        reachable = np.zeros(batch, dtype=np.int64)
        totals = np.zeros(batch, dtype=np.int64)
        for depth, counts in enumerate(level_counts, start=1):
            reachable += counts
            totals += depth * counts
        # Per-source floats in source order, with the reference's exact
        # integer-then-float arithmetic (the int64 accumulators are exact, so
        # vectorising the accumulation cannot perturb a bit).
        for j in range(batch):
            reached = int(reachable[j])
            if reached == 0:
                values.append(0.0)
            else:
                closeness = reached / int(totals[j])
                values.append(closeness * (reached / (n - 1)))
    return sum(values) / len(values)


def _full_population_closeness(csr: CSRGraph, n: int) -> float:
    """Exact mean closeness with every live node as a BFS source.

    Runs the same wave chunks a sampled campaign would, but instead of
    extracting per-*source* column counts each level it scatters per-*node*
    row popcounts into ``(reached, total)`` accumulators: by symmetry of
    shortest-path distance, the sum of ``depth * popcount`` contributions a
    node collects across every wave is exactly its own distance sum once all
    sources have run.  The final per-node float expressions and their
    summation order mirror the reference implementation bit for bit.
    """
    live = live_source_indices(csr)
    # ``reached`` falls straight out of symmetry too: the sources reaching a
    # node are exactly the other members of its component, so one component
    # labelling replaces a per-level scatter.
    reached = _reached_counts(csr, live)
    totals = np.zeros(csr.n, dtype=np.int64)
    chunk_size = wave_batch(csr, live.size)
    for offset in range(0, live.size, chunk_size):
        chunk = live[offset:offset + chunk_size]
        waves = _batched_wave(csr, chunk, counting=True)
        for depth, (rows, popcounts) in enumerate(waves, start=1):
            totals[rows] += depth * popcounts
    # Vectorised but bit-identical assembly: every operand is an int64 far
    # below 2**53, so float64 conversion is exact and each division/multiply
    # rounds exactly like the reference's Python-float expression.  Only the
    # final accumulation must stay sequential (numpy would sum pairwise), so
    # it runs over a plain list exactly like the reference's ``sum(values)``.
    live_reached = reached[live].astype(np.float64)
    live_totals = totals[live].astype(np.float64)
    values = np.zeros(live.size, dtype=np.float64)
    covered = live_reached > 0
    closeness = live_reached[covered] / live_totals[covered]
    values[covered] = closeness * (live_reached[covered] / (n - 1))
    return sum(values.tolist()) / values.size


# ----------------------------------------------------------------------
# Exact full-population path metrics (eccentricity / diameter / ASPL)
# ----------------------------------------------------------------------
def live_source_indices(csr: CSRGraph) -> np.ndarray:
    """Every live (non-ghost) index of ``csr`` -- the full-population source set."""
    if csr.alive is None:
        return np.arange(csr.n, dtype=np.int64)
    return np.flatnonzero(csr.alive)


def _reached_counts(csr: CSRGraph, live: np.ndarray) -> np.ndarray:
    """Per-index count of *other* live nodes in the same component.

    By distance symmetry this is exactly how many full-population sources
    reach each node, so one component labelling replaces a per-level
    scatter; only the ``live`` entries are meaningful (ghost rows may read
    ``-1``).
    """
    labels = _component_labels(csr.n, csr.indptr, csr.indices)
    sizes = np.bincount(labels[live], minlength=csr.n)
    return sizes[labels] - 1


def accumulate_path_shard(
    csr: CSRGraph, sources: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-node path accumulators from one shard of BFS sources.

    Runs the multi-word waves for ``sources`` (index array) in
    :func:`wave_batch`-sized chunks and scatters each level's per-node row
    popcounts into two ``(csr.n,)`` int64 accumulators:

    * ``ecc[v]``    -- ``max_u d(u, v)`` over the shard's sources ``u`` (the
      transposed per-node *max* over wave levels);
    * ``totals[v]`` -- ``sum_u d(u, v)`` (the level-weighted popcount sum).

    When the shards of a campaign together cover every node, distance
    symmetry makes the merged ``ecc`` the exact per-node eccentricity and
    ``totals`` the exact per-node distance sum.  Both accumulators are exact
    integers, so merging shard results (elementwise ``max`` for ``ecc``,
    ``+`` for ``totals``) is bit-identical no matter how the source set was
    split -- which is what lets the runner fan a 100k-source campaign across
    process-pool workers for free.
    """
    sources = np.asarray(sources, dtype=np.int64)
    ecc = np.zeros(csr.n, dtype=np.int64)
    totals = np.zeros(csr.n, dtype=np.int64)
    if sources.size == 0:
        return ecc, totals
    chunk_size = wave_batch(csr, sources.size)
    for offset in range(0, sources.size, chunk_size):
        chunk = sources[offset:offset + chunk_size]
        waves = _batched_wave(csr, chunk, counting=True)
        for depth, (rows, popcounts) in enumerate(waves, start=1):
            totals[rows] += depth * popcounts
            # ``rows`` is duplicate-free per level, so a fancy-indexed max is
            # safe; depths vary across chunks, hence max rather than assign.
            ecc[rows] = np.maximum(ecc[rows], depth)
    return ecc, totals


def serialize_accumulators(ecc: np.ndarray, totals: np.ndarray) -> Dict[str, str]:
    """Encode one shard's ``(ecc, totals)`` accumulators for the journal.

    zlib-compressed little-endian int64 bytes, base64-armored for JSON --
    the exact integer payload of :func:`accumulate_path_shard`, so a
    deserialized state merges bit-identically with freshly computed shards.
    """
    import base64
    import zlib

    def _pack(array: np.ndarray) -> str:
        data = np.ascontiguousarray(array, dtype="<i8").tobytes()
        return base64.b64encode(zlib.compress(data, 6)).decode("ascii")

    return {"ecc": _pack(ecc), "totals": _pack(totals)}


def deserialize_accumulators(
    state: Dict[str, str], n: int
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Decode a journaled accumulator state; ``None`` when it cannot be trusted.

    Validates shape (both arrays must decode to exactly ``n`` int64
    entries) and survives any decode failure -- a corrupt or mis-sized
    state means the shard recomputes, never crashes the resume.
    """
    import base64
    import binascii
    import zlib

    def _unpack(encoded: str) -> Optional[np.ndarray]:
        try:
            data = zlib.decompress(base64.b64decode(encoded, validate=True))
        except (binascii.Error, ValueError, zlib.error, TypeError):
            return None
        if len(data) != 8 * n:
            return None
        return np.frombuffer(data, dtype="<i8").astype(np.int64)

    try:
        ecc = _unpack(state["ecc"])
        totals = _unpack(state["totals"])
    except (KeyError, TypeError):
        return None
    if ecc is None or totals is None:
        return None
    return ecc, totals


def accumulator_state_key(csr: CSRGraph, sources: np.ndarray) -> str:
    """Content hash anchoring journaled accumulators to one exact checkpoint.

    Digests the CSR snapshot (``n``, ``indptr``, ``indices``, the alive
    mask when one exists) and the full source set, so a resumed campaign
    replays a saved shard only when the graph it would recompute against is
    byte-for-byte the graph it was computed on.
    """
    import hashlib

    digest = hashlib.sha256()
    digest.update(int(csr.n).to_bytes(8, "little"))
    digest.update(np.ascontiguousarray(csr.indptr, dtype="<i8").tobytes())
    digest.update(np.ascontiguousarray(csr.indices, dtype="<i4").tobytes())
    alive = getattr(csr, "alive", None)
    if alive is not None:
        digest.update(np.ascontiguousarray(alive, dtype=np.uint8).tobytes())
    digest.update(np.ascontiguousarray(sources, dtype="<i8").tobytes())
    return digest.hexdigest()[:32]


def full_path_metrics(graph: UndirectedGraph, *, shard_runner=None) -> Dict:
    """Exact diameter, ASPL and closeness of the largest component, one campaign.

    Returns ``{components, largest_fraction, diameter, avg_path_length,
    avg_closeness}`` with every path metric *exact* (every node of the
    largest component a BFS source) -- the full-population counterpart of
    :meth:`repro.core.ddsr.DDSROverlay.path_metric_summary`'s sampled
    estimators, bit-identical to the pure-Python reference
    (:func:`repro.graphs.metrics.full_path_metrics`).

    One wave campaign feeds all three metrics through the per-node
    accumulators of :func:`accumulate_path_shard`: the diameter is the max
    of the per-node eccentricities, the ASPL divides the exact int64
    distance-sum total by the pair count, and closeness reuses the same
    distance sums with the reference's integer-then-float arithmetic and
    sequential summation order.

    ``shard_runner`` (used by
    :func:`repro.runner.executor.sharded_full_path_metrics`) replaces the
    serial accumulation: it receives ``(working, csr, sources)`` -- the
    working graph backing ``csr``, so a persistent pool can key its
    shared-memory publications and delta-track mutations -- and must return
    the merged ``(ecc, totals)`` accumulators.  Because the accumulators are
    exact integers, any split of the source set merges to the serial result
    bit for bit.
    """
    n = graph.number_of_nodes()
    summary = {
        "components": 0,
        "largest_fraction": 0.0,
        "diameter": 0.0,
        "avg_path_length": 0.0,
        "avg_closeness": 0.0,
    }
    if n == 0:
        return summary
    working, component_count = _working_component(graph)
    csr = csr_of(working)
    live = live_source_indices(csr)
    n_working = int(live.size)
    if shard_runner is None:
        ecc, totals = accumulate_path_shard(csr, live)
    else:
        ecc, totals = shard_runner(working, csr, live)
    summary["components"] = component_count
    summary["largest_fraction"] = n_working / n
    summary["diameter"] = float(int(ecc[live].max())) if n_working else 0.0
    total = int(totals[live].sum())
    pairs = n_working * (n_working - 1)
    summary["avg_path_length"] = total / pairs if pairs else 0.0
    if n_working > 1:
        # The working graph is connected, so every node reaches the same
        # ``n_working - 1`` peers; the per-node float expressions and the
        # sequential summation mirror the reference bit for bit (exact int64
        # operands below 2**53, identical IEEE divisions and products).
        reached = n_working - 1
        closeness = reached / totals[live].astype(np.float64)
        values = closeness * (reached / (n_working - 1))
        summary["avg_closeness"] = sum(values.tolist()) / n_working
    return summary


def path_length_accumulators(graph: UndirectedGraph) -> Dict[NodeId, Tuple[int, int, int]]:
    """``{node: (eccentricity, distance_sum, reachable_count)}`` -- all exact.

    The per-node accumulators behind :func:`full_path_metrics`, exposed for
    callers that want per-node ASPL (``distance_sum / reachable_count``) or
    the eccentricity distribution.  Identical to running the reference BFS
    from every node (:func:`repro.graphs.metrics.path_length_accumulators`);
    distances never leave the component, so no largest-component extraction
    happens here.
    """
    csr = csr_of(graph)
    live = live_source_indices(csr)
    ecc, totals = accumulate_path_shard(csr, live)
    reached = _reached_counts(csr, live)
    nodes = csr.nodes
    return {
        nodes[int(i)]: (int(ecc[i]), int(totals[i]), int(reached[i]))
        for i in live
    }


def degree_centrality(graph: UndirectedGraph, node: NodeId) -> float:
    """Degree of ``node`` normalised by ``n - 1``."""
    n = graph.number_of_nodes()
    if n <= 1:
        return 0.0
    return graph.degree(node) / (n - 1)


def average_degree_centrality(graph: UndirectedGraph) -> float:
    """Mean degree centrality over every node."""
    n = graph.number_of_nodes()
    if n <= 1:
        return 0.0
    csr = csr_of(graph)
    total_degree = int(csr.indptr[-1])
    return (total_degree / n) / (n - 1)


def _grouped_components(labels: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Unique labels (ascending == discovery order) and their member indices."""
    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]
    boundaries = np.flatnonzero(np.diff(sorted_labels)) + 1
    groups = np.split(order, boundaries)
    unique = sorted_labels[np.concatenate(([0], boundaries))] if labels.size else sorted_labels
    return unique, groups


def connected_components(graph: UndirectedGraph) -> List[Set[NodeId]]:
    """All connected components as sets of nodes, reference-identical order.

    The reference implementation discovers components by scanning
    ``graph.nodes()`` and stable-sorts by size (descending).  A component's
    label is its minimum node *index*, so ascending label order *is* discovery
    order; the same stable size sort then reproduces the exact list order.
    Ghost indices of a patched CSR are masked out first -- live indices keep
    their relative (insertion) order, so the ordering argument still holds.
    """
    if graph.number_of_nodes() == 0:
        return []
    csr = csr_of(graph)
    labels = _component_labels(csr.n, csr.indptr, csr.indices)
    nodes = csr.nodes
    if csr.alive is None:
        _, groups = _grouped_components(labels)
        members = [[int(i) for i in group] for group in groups]
    else:
        live = np.flatnonzero(csr.alive)
        _, groups = _grouped_components(labels[live])
        members = [[int(live[i]) for i in group] for group in groups]
    sizes = np.fromiter((len(group) for group in members), dtype=np.int64, count=len(members))
    order = np.argsort(-sizes, kind="stable")
    return [{nodes[i] for i in members[int(g)]} for g in order]


def _live_labels(graph: UndirectedGraph) -> np.ndarray:
    """Component labels restricted to live (non-ghost) indices."""
    csr = csr_of(graph)
    labels = _component_labels(csr.n, csr.indptr, csr.indices)
    if csr.alive is None:
        return labels
    return labels[csr.alive]


def number_connected_components(graph: UndirectedGraph) -> int:
    """Count of connected components (0 for an empty graph)."""
    if graph.number_of_nodes() == 0:
        return 0
    return len(np.unique(_live_labels(graph)))


def component_summary(graph: UndirectedGraph) -> Tuple[int, int]:
    """``(component_count, largest_component_size)`` in one kernel run."""
    if graph.number_of_nodes() == 0:
        return 0, 0
    _, counts = np.unique(_live_labels(graph), return_counts=True)
    return len(counts), int(counts.max())


def largest_component_fraction(graph: UndirectedGraph) -> float:
    """Fraction of surviving nodes inside the largest connected component."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    _, largest = component_summary(graph)
    return largest / n


def eccentricity(graph: UndirectedGraph, node: NodeId) -> int:
    """Largest BFS distance from ``node`` within its component."""
    csr = csr_of(graph)
    if node not in csr.index_of:
        raise GraphError(f"source {node!r} not in graph")
    distances = bfs_distances(csr, csr.index_of[node])
    return int(distances.max()) if distances.size else 0


def largest_component_subgraph(graph: UndirectedGraph) -> UndirectedGraph:
    """``graph`` when connected, else the induced largest-component subgraph."""
    if graph.number_of_nodes() == 0:
        return graph
    return _working_component(graph)[0]


def _working_component(graph: UndirectedGraph) -> Tuple[UndirectedGraph, int]:
    """``(graph-or-largest-component-subgraph, component_count)``.

    Mirrors the reference implementations exactly: the subgraph is built with
    the same ``UndirectedGraph.subgraph(set)`` call on an equal component set
    (largest, ties broken by discovery order), so node insertion order -- and
    therefore sampled-source selection -- is identical.
    """
    csr = csr_of(graph)
    labels = _component_labels(csr.n, csr.indptr, csr.indices)
    live_labels = labels if csr.alive is None else labels[csr.alive]
    unique, counts = np.unique(live_labels, return_counts=True)
    if len(unique) <= 1:
        return graph, len(unique)
    # ``unique`` ascends by label == discovery order; argmax keeps the first
    # (discovery-order) component among equal-size ties, like the reference's
    # stable size sort.
    winner = unique[int(np.argmax(counts))]
    in_winner = labels == winner
    if csr.alive is not None:
        in_winner &= csr.alive
    nodes = csr.nodes
    members = {nodes[int(i)] for i in np.flatnonzero(in_winner)}
    return graph.subgraph(members), len(unique)


def diameter(
    graph: UndirectedGraph,
    *,
    sample_size: Optional[int] = None,
    rng: Optional[random.Random] = None,
    largest_component_only: bool = True,
    connected: Optional[bool] = None,
) -> float:
    """Diameter of the graph (see :func:`repro.graphs.metrics.diameter`)."""
    if graph.number_of_nodes() == 0:
        return 0.0
    if connected:
        working = graph
    else:
        working, component_count = _working_component(graph)
        if component_count > 1 and not largest_component_only:
            return float("inf")
    csr = csr_of(working)
    nodes = _select_nodes(working, sample_size, rng)
    best = 0
    # A source's eccentricity is the last level at which its packed frontier
    # still advanced, so the batched wave's level count *is* the chunk's max
    # -- no per-level count extraction needed at all.
    indices = _batched_source_indices(csr, nodes)
    chunk_size = wave_batch(csr, indices.size) if indices.size else BFS_BATCH
    for offset in range(0, indices.size, chunk_size):
        chunk = indices[offset:offset + chunk_size]
        best = max(best, sum(1 for _ in _batched_wave(csr, chunk)))
    return float(best)


def average_shortest_path_length(
    graph: UndirectedGraph,
    *,
    sample_size: Optional[int] = None,
    rng: Optional[random.Random] = None,
    connected: Optional[bool] = None,
) -> float:
    """Mean pairwise distance inside the largest component (sampled sources)."""
    if graph.number_of_nodes() <= 1:
        return 0.0
    working = graph if connected else _working_component(graph)[0]
    csr = csr_of(working)
    nodes = _select_nodes(working, sample_size, rng)
    total = 0
    pairs = 0
    # Only the per-level aggregate is needed, so row popcounts suffice -- no
    # per-source column counting at all (the integers are identical).
    indices = _batched_source_indices(csr, nodes)
    chunk_size = wave_batch(csr, indices.size) if indices.size else BFS_BATCH
    for offset in range(0, indices.size, chunk_size):
        chunk = indices[offset:offset + chunk_size]
        waves = _batched_wave(csr, chunk, counting=True)
        for depth, (_rows, popcounts) in enumerate(waves, start=1):
            newly = int(popcounts.sum())
            total += depth * newly
            pairs += newly
    if pairs == 0:
        return 0.0
    return total / pairs


def degree_histogram(graph: UndirectedGraph) -> Dict[int, int]:
    """Mapping of degree value -> number of nodes with that degree."""
    if graph.number_of_nodes() == 0:
        return {}
    csr = csr_of(graph)
    degrees = csr.degrees()
    if csr.alive is not None:
        degrees = degrees[csr.alive]
    values, counts = np.unique(degrees, return_counts=True)
    return {int(value): int(count) for value, count in zip(values, counts)}


def top_degree_nodes(graph: UndirectedGraph) -> List[NodeId]:
    """All maximum-degree nodes, sorted by ``repr`` (empty for an empty graph).

    One masked argmax over the CSR degree array instead of a Python dict
    scan; with the incremental delta patching this keeps the hub-targeted
    takedown's per-victim candidate search cheap even while the overlay
    mutates between victims.
    """
    if graph.number_of_nodes() == 0:
        return []
    csr = csr_of(graph)
    degrees = csr.degrees()
    if csr.alive is None:
        top = int(degrees.max())
        winners = np.flatnonzero(degrees == top)
    else:
        live = np.flatnonzero(csr.alive)
        live_degrees = degrees[live]
        top = int(live_degrees.max())
        winners = live[np.flatnonzero(live_degrees == top)]
    nodes = csr.nodes
    return sorted((nodes[int(i)] for i in winners), key=repr)


def induced_component_summary(
    graph: UndirectedGraph, keep_nodes: Sequence[NodeId]
) -> Tuple[int, int, int, int]:
    """``(surviving, components, largest, isolated)`` of an induced subgraph.

    Builds a compact CSR of the subgraph induced on ``keep_nodes`` straight
    from the adjacency sets -- one pass over the kept nodes' neighbour lists
    -- and labels components on it.  Unlike
    :func:`partition_summary_after_removal` it never mirrors the *full*
    graph, which matters when the kept set is a small minority: a finished
    SOAP campaign leaves several clones per bot, so the benign subgraph is an
    order of magnitude smaller than the overlay.
    """
    adjacency = graph._adjacency
    # dict.fromkeys: drop duplicates while keeping first-occurrence order, so
    # a repeated id cannot leave an edge-less phantom row behind.
    keep = [node for node in dict.fromkeys(keep_nodes) if node in adjacency]
    n = len(keep)
    if n == 0:
        return 0, 0, 0, 0
    index = {node: i for i, node in enumerate(keep)}
    src: List[int] = []
    dst: List[int] = []
    for i, node in enumerate(keep):
        for peer in adjacency[node]:
            j = index.get(peer)
            if j is not None:
                src.append(i)
                dst.append(j)
    # ``src`` is already nondecreasing (built in index order): no sort needed.
    indices = np.asarray(dst, dtype=np.int32)
    degrees = np.bincount(np.asarray(src, dtype=np.int64), minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    labels = _component_labels(n, indptr, indices)
    _, counts = np.unique(labels, return_counts=True)
    return n, len(counts), int(counts.max()), int((counts == 1).sum())


# ----------------------------------------------------------------------
# Masked kernels (Figure 6 simultaneous-deletion sweeps)
# ----------------------------------------------------------------------
def partition_summary_after_removal(
    graph: UndirectedGraph, victims: Sequence[NodeId]
) -> Tuple[int, int, int, int]:
    """``(surviving, components, largest, isolated)`` after removing ``victims``.

    Computes the survivors' component structure directly on a masked CSR --
    no per-victim-set Python subgraph construction -- which is what makes the
    100k-node partition-threshold sweep tractable.
    """
    csr = csr_of(graph)
    keep = np.ones(csr.n, dtype=bool) if csr.alive is None else csr.alive.copy()
    for victim in victims:
        index = csr.index_of.get(victim)
        if index is not None:
            keep[index] = False
    surviving = int(keep.sum())
    if surviving == 0:
        return 0, 0, 0, 0
    # Filter to surviving-endpoint edges and rebuild a compact CSR over the
    # original index space (removed nodes simply keep zero degree).
    src = np.repeat(np.arange(csr.n, dtype=np.int64), csr.degrees())
    dst = csr.indices.astype(np.int64, copy=False)
    edge_keep = keep[src] & keep[dst]
    fsrc = src[edge_keep]
    fdst = dst[edge_keep]
    order = np.argsort(fsrc, kind="stable")
    findices = fdst[order]
    fdegrees = np.bincount(fsrc, minlength=csr.n)
    findptr = np.zeros(csr.n + 1, dtype=np.int64)
    np.cumsum(fdegrees, out=findptr[1:])
    labels = _component_labels(csr.n, findptr, findices)
    _, counts = np.unique(labels[keep], return_counts=True)
    components = len(counts)
    largest = int(counts.max())
    isolated = int((counts == 1).sum())
    return surviving, components, largest, isolated
