"""Smoke tests for the ``python -m repro.runner`` CLI."""

import json

from repro.runner.cli import main


class TestList:
    def test_lists_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "soap-campaign" in out
        assert "soap-under-churn" in out

    def test_composed_only(self, capsys):
        assert main(["list", "--composed"]) == 0
        out = capsys.readouterr().out
        assert "soap-under-churn" in out
        assert "fig5-resilience" not in out


class TestRun:
    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["run", "nope", "--no-cache"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_with_overrides_and_outputs(self, tmp_path, capsys):
        json_out = tmp_path / "out.json"
        csv_out = tmp_path / "out.csv"
        code = main(
            [
                "run",
                "fig3-walkthrough",
                "--set", "n=12", "--set", "deletions=4",
                "--trials", "2",
                "--seed", "5",
                "--cache-dir", str(tmp_path / "cache"),
                "--quiet",
                "--json", str(json_out),
                "--csv", str(csv_out),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "final_connected" in out
        assert "2 unit(s)" in out
        payload = json.loads(json_out.read_text())
        assert payload["rows"][0]["trials"] == 2
        assert csv_out.read_text().startswith("n,")

    def test_second_invocation_is_cached(self, tmp_path, capsys):
        args = [
            "run", "fig3-walkthrough", "--seed", "5", "--quiet",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "[1 cached, 0 computed]" in capsys.readouterr().out


class TestSweep:
    def test_sweep_grid_axes(self, tmp_path, capsys):
        code = main(
            [
                "sweep",
                "ablation-repair-policy",
                "--grid", "policy=clique,none",
                "--set", "n=60", "--set", "k=6",
                "--seed", "3",
                "--no-cache",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "clique" in out and "none" in out
        assert "2 unit(s)" in out
