"""Tests for the no-self-repair baseline overlay."""

import random

from repro.baselines.normal_graph import NormalOverlay
from repro.core.ddsr import DDSROverlay
from repro.graphs.metrics import number_connected_components


class TestNormalOverlay:
    def test_no_repair_edges_ever_added(self):
        overlay = NormalOverlay.k_regular(100, 6, seed=1)
        overlay.remove_fraction(0.5, rng=random.Random(0))
        assert overlay.stats.repair_edges_added == 0
        assert overlay.stats.prune_edges_removed == 0

    def test_partitions_under_heavy_deletion_unlike_ddsr(self):
        schedule_seed = random.Random(42)
        ddsr = DDSROverlay.k_regular(150, 10, seed=7)
        normal = NormalOverlay.matching(ddsr)
        victims = schedule_seed.sample(ddsr.nodes(), 120)
        ddsr.remove_nodes(list(victims))
        normal.remove_nodes(list(victims))
        assert number_connected_components(ddsr.graph) == 1
        assert number_connected_components(normal.graph) > 1

    def test_matching_copies_current_wiring(self):
        ddsr = DDSROverlay.k_regular(40, 4, seed=3)
        normal = NormalOverlay.matching(ddsr)
        assert sorted(map(sorted, normal.graph.edges())) == sorted(map(sorted, ddsr.graph.edges()))
        # Mutating one must not affect the other.
        normal.remove_node(normal.nodes()[0])
        assert len(ddsr) == 40

    def test_k_regular_builder_ignores_config_argument(self):
        overlay = NormalOverlay.k_regular(30, 4, config="ignored", seed=1)
        assert len(overlay) == 30

    def test_degrees_never_pruned(self):
        overlay = NormalOverlay.k_regular(60, 6, seed=2)
        # Manually inflate a node's degree; the normal overlay never prunes.
        hub = overlay.nodes()[0]
        for other in overlay.nodes()[1:30]:
            if not overlay.graph.has_edge(hub, other):
                overlay.graph.add_edge(hub, other)
        overlay.enforce_degree_bound(hub)
        assert overlay.degree(hub) > 20
