"""Setuptools shim so ``pip install -e .`` works in offline environments.

The canonical project metadata lives in ``pyproject.toml``; this file only
exists because editable installs on older setuptools/pip combinations (without
the ``wheel`` package available) fall back to the legacy ``setup.py develop``
code path.
"""

from setuptools import setup

setup()
