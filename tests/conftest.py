"""Shared pytest configuration and fixtures.

The ``src`` directory is added to ``sys.path`` so the suite also runs in
environments where the editable install could not be performed (e.g. fully
offline machines without the ``wheel`` package).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.botnet import OnionBotnet  # noqa: E402
from repro.core.ddsr import DDSROverlay  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.tor.network import TorNetwork, TorNetworkConfig  # noqa: E402


@pytest.fixture
def simulator() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=1234)


@pytest.fixture
def tor_network(simulator: Simulator) -> TorNetwork:
    """A bootstrapped in-memory Tor network with a modest relay population."""
    network = TorNetwork(simulator, TorNetworkConfig(num_relays=30))
    network.bootstrap()
    return network


@pytest.fixture
def small_overlay() -> DDSROverlay:
    """A 60-node, 6-regular DDSR overlay."""
    return DDSROverlay.k_regular(60, 6, seed=42)


@pytest.fixture
def small_botnet() -> OnionBotnet:
    """A fully built 16-bot OnionBotnet simulation."""
    net = OnionBotnet(seed=99)
    net.build(16)
    return net
