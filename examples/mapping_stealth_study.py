#!/usr/bin/env python3
"""Mapping & stealth study: what can a defender actually learn? (paper §V-A)

The paper claims that OnionBots resist mapping, size estimation and traffic
classification.  This example quantifies each claim against the simulator:

1. **Crawling** -- starting from captured bots, how much of the overlay can a
   defender enumerate, and what survives an address rotation?
2. **Size estimation** -- how wrong is a capture-recapture estimate built from
   peer lists?
3. **Traffic analysis** -- can a passive observer distinguish OnionBot
   envelopes from each other (broadcast vs directed vs maintenance) or from
   legacy botnet C&C traffic?
4. **Heartbeats and silent failures** -- how the botnet itself notices dead
   peers and repairs, which is the flip side of the defender staying invisible.

Run with:  python examples/mapping_stealth_study.py
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.adversary import PassiveObserver, distinguishable  # noqa: E402
from repro.adversary.mapping import OverlayCrawler, SizeEstimator  # noqa: E402
from repro.baselines.legacy_botnets import sample_message  # noqa: E402
from repro.core import DDSROverlay, FailureDetector, OnionBotnet  # noqa: E402
from repro.core.messaging import MessageKind  # noqa: E402


def crawling_section() -> None:
    print("=" * 70)
    print("1. Crawling the overlay from captured bots")
    print("=" * 70)
    overlay = DDSROverlay.k_regular(1000, 10, seed=3)
    # One crawl round = read the peer lists (and NoN knowledge) of the bots
    # the defender actually compromised; going deeper would require
    # compromising every newly discovered bot before the next rotation.
    crawler = OverlayCrawler(max_rounds=1)
    for captures in (1, 3, 10):
        start = overlay.nodes()[:captures]
        result = crawler.crawl_then_rotate(overlay, start)
        print(f"  {captures:3d} captured bot(s): enumerated {len(result.discovered):4d}/1000 "
              f"({result.coverage:.0%}); addresses still valid after one rotation: "
              f"{result.usable_after_rotation}")


def size_estimation_section() -> None:
    print()
    print("=" * 70)
    print("2. Estimating the botnet size from peer lists")
    print("=" * 70)
    overlay = DDSROverlay.k_regular(1000, 10, seed=4)
    estimator = SizeEstimator()
    rng = random.Random(0)
    for node in rng.sample(overlay.nodes(), 2):
        estimator.record_capture(overlay.peers(node))
    print(f"  true size: 1000 bots")
    print(f"  capture-recapture estimate from two peer lists: {estimator.estimate():.0f}")
    print(f"  relative error: {estimator.error_against(1000):.0%}")


def traffic_section() -> None:
    print()
    print("=" * 70)
    print("3. Passive traffic analysis")
    print("=" * 70)
    net = OnionBotnet(seed=5)
    net.build(12)
    observer = PassiveObserver()
    flows = {}
    for kind, issue in (
        (MessageKind.COMMAND_BROADCAST, lambda: net.botmaster.issue_broadcast("noop", now=net.simulator.now)),
        (MessageKind.MAINTENANCE, lambda: net.botmaster.issue_maintenance("update-peer-list", now=net.simulator.now)),
    ):
        blobs = []
        for index in range(6):
            message = issue()
            envelope = net.botmaster.envelope_for(message, bytes([index]) * 32)
            blobs.append(envelope.blob)
            observer.observe(envelope.blob)
        flows[kind.value] = blobs
    features = observer.report()
    print(f"  observed {features.samples} OnionBot envelopes: every one is "
          f"{features.mean_length:.0f} bytes, entropy {features.mean_entropy:.2f} bits/byte")
    print(f"  observer classification: {observer.classify()}")
    print(f"  broadcast vs maintenance distinguishable? "
          f"{distinguishable(flows['command-broadcast'], flows['maintenance'])}")
    legacy = [sample_message('Zeus', serial) for serial in range(1, 7)]
    print(f"  Zeus C&C flow vs OnionBot flow distinguishable? "
          f"{distinguishable(legacy, flows['command-broadcast'])}")


def heartbeat_section() -> None:
    print()
    print("=" * 70)
    print("4. Silent failures, heartbeats, and self-repair")
    print("=" * 70)
    net = OnionBotnet(seed=6)
    net.build(16)
    victims = net.active_labels()[:3]
    for victim in victims:
        net.silent_failure(victim)
    print(f"  3 bots died silently; overlay still lists them: "
          f"{all(victim in net.overlay.graph for victim in victims)}")
    detector = FailureDetector(net, suspicion_threshold=2)
    for sweep_index in range(1, 3):
        report = detector.sweep()
        print(f"  heartbeat sweep {sweep_index}: {report.probes_sent} probes, "
              f"{report.peers_unreachable} unreachable, declared dead: {report.dead_labels or 'none'}")
    stats = net.stats()
    print(f"  after repair: {stats.active_bots} active bots, "
          f"{stats.connected_components} component(s), max degree {stats.max_degree}")
    coverage = net.broadcast_command("report-status").coverage
    print(f"  broadcast coverage after healing: {coverage:.0%}")


def main() -> None:
    crawling_section()
    size_estimation_section()
    traffic_section()
    heartbeat_section()


if __name__ == "__main__":
    main()
