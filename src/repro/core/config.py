"""Configuration for OnionBot simulations.

A single dataclass collects every knob the paper mentions (degree bounds,
rotation period, peer-list subset probability) plus the simulation-scale
parameters the experiment harness varies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.clock import SECONDS_PER_DAY


@dataclass
class OnionBotConfig:
    """Parameters of an OnionBot deployment.

    Attributes
    ----------
    degree:
        Target peer-list size when the overlay is first wired (the ``k`` of
        the paper's k-regular starting graphs).
    d_min / d_max:
        Degree bounds maintained by the pruning step (section IV-C).  The
        paper keeps node degree "in the range [d_min, d_max]"; by default we
        centre that range on ``degree``.
    rotation_period:
        Seconds between ``.onion`` address rotations (default: one day, the
        paper's example period).
    peer_share_probability:
        Probability ``p`` with which each entry of an infecting bot's peer
        list is copied into the new bot's hardcoded list (section IV-B).
    pruning_enabled:
        Whether the degree-pruning step runs after repairs.
    forgetting_enabled:
        Whether pruned peers' addresses are forgotten (section IV-C).
    heartbeat_interval:
        Seconds between keep-alive probes among peers (used to detect
        disappeared neighbours and trigger the repair step).
    """

    degree: int = 10
    d_min: int = 5
    d_max: int = 15
    rotation_period: float = float(SECONDS_PER_DAY)
    peer_share_probability: float = 0.5
    pruning_enabled: bool = True
    forgetting_enabled: bool = True
    heartbeat_interval: float = 600.0
    group_names: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ValueError(f"degree must be >= 1, got {self.degree}")
        if self.d_min < 0:
            raise ValueError(f"d_min must be >= 0, got {self.d_min}")
        if self.d_max < self.d_min:
            raise ValueError(
                f"d_max ({self.d_max}) must be >= d_min ({self.d_min})"
            )
        if not self.d_min <= self.degree <= self.d_max:
            raise ValueError(
                f"degree ({self.degree}) must lie within [d_min, d_max] "
                f"([{self.d_min}, {self.d_max}])"
            )
        if not 0.0 <= self.peer_share_probability <= 1.0:
            raise ValueError(
                f"peer_share_probability must be in [0, 1], got {self.peer_share_probability}"
            )
        if self.rotation_period <= 0:
            raise ValueError(f"rotation_period must be positive, got {self.rotation_period}")
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {self.heartbeat_interval}"
            )

    @classmethod
    def paper_defaults(cls, degree: int = 10) -> "OnionBotConfig":
        """The configuration used throughout the paper's evaluation.

        Figures 4 and 5 use k-regular graphs with k in {5, 10, 15}; pruning
        keeps degrees within [5, 15] around the chosen k.
        """
        return cls(degree=degree, d_min=min(5, degree), d_max=max(15, degree))
