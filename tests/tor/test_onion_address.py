"""Tests for onion address derivation."""

import hashlib

import pytest

from repro.crypto.keys import KeyPair
from repro.tor.onion_address import (
    IDENTIFIER_LENGTH,
    OnionAddress,
    is_valid_onion,
    onion_address_from_identifier,
    onion_address_from_public_key,
    service_identifier,
)


class TestServiceIdentifier:
    def test_identifier_is_first_10_bytes_of_sha1(self):
        keypair = KeyPair.from_seed(b"service")
        expected = hashlib.sha1(keypair.public.material).digest()[:IDENTIFIER_LENGTH]
        assert service_identifier(keypair.public) == expected

    def test_identifier_accepts_raw_bytes(self):
        material = b"\x01" * 32
        assert service_identifier(material) == hashlib.sha1(material).digest()[:10]

    def test_identifier_length(self):
        assert len(service_identifier(KeyPair.from_seed(b"x").public)) == 10


class TestOnionAddress:
    def test_address_has_16_char_label_and_suffix(self):
        address = onion_address_from_public_key(KeyPair.from_seed(b"svc"))
        assert str(address).endswith(".onion")
        assert len(address.label) == 16

    def test_address_roundtrips_identifier(self):
        keypair = KeyPair.from_seed(b"svc")
        address = onion_address_from_public_key(keypair)
        assert address.identifier() == service_identifier(keypair.public)

    def test_address_is_deterministic_per_key(self):
        a = onion_address_from_public_key(KeyPair.from_seed(b"svc"))
        b = onion_address_from_public_key(KeyPair.from_seed(b"svc"))
        assert a == b

    def test_different_keys_give_different_addresses(self):
        a = onion_address_from_public_key(KeyPair.from_seed(b"svc-a"))
        b = onion_address_from_public_key(KeyPair.from_seed(b"svc-b"))
        assert a != b

    def test_accepts_keypair_public_or_bytes(self):
        keypair = KeyPair.from_seed(b"svc")
        assert (
            onion_address_from_public_key(keypair)
            == onion_address_from_public_key(keypair.public)
            == onion_address_from_public_key(keypair.public.material)
        )

    def test_label_is_lowercase_base32(self):
        address = onion_address_from_public_key(KeyPair.from_seed(b"svc"))
        assert address.label == address.label.lower()
        assert set(address.label) <= set("abcdefghijklmnopqrstuvwxyz234567")

    def test_invalid_suffix_rejected(self):
        with pytest.raises(ValueError):
            OnionAddress("abcdefghijklmnop.com")

    def test_wrong_label_length_rejected(self):
        with pytest.raises(ValueError):
            OnionAddress("tooshort.onion")

    def test_identifier_length_enforced(self):
        with pytest.raises(ValueError):
            onion_address_from_identifier(b"short")

    def test_is_valid_onion_helper(self):
        address = onion_address_from_public_key(KeyPair.from_seed(b"svc"))
        assert is_valid_onion(str(address))
        assert not is_valid_onion("not-an-onion")

    def test_addresses_are_orderable(self):
        a = onion_address_from_public_key(KeyPair.from_seed(b"a"))
        b = onion_address_from_public_key(KeyPair.from_seed(b"b"))
        assert sorted([b, a]) == sorted([a, b])
