"""Simulated signatures and certificates.

The paper uses signatures in two places: bots authenticate botmaster commands
(section IV-D), and the botnet-for-rent scheme (section IV-E) has the
botmaster sign a token over the renter's public key, an expiration time and a
command whitelist.  We model signatures as deterministic MAC-like tags bound to
the *simulated* keypair: only the holder of the private half can produce the
tag, and anyone holding the public half can verify it by recomputation inside
the simulator.  This captures unforgeability *within the simulation* (no other
simulated actor can mint a valid tag without the private bytes) which is the
property the protocol logic and the tests rely on.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional

from repro.crypto.keys import KeyPair, PublicKey

_SIGNING_CONTEXT = b"repro.simulated-signature"


class SignatureError(ValueError):
    """Raised when signature verification fails."""


def _signing_secret(public: PublicKey) -> bytes:
    """The private material implied by a public key.

    Simulated keypairs derive the public key as ``SHA256(context || private)``,
    which is one-way; verification instead recomputes the tag from a secret
    *derived from the private key at signing time* and embedded in the
    signature envelope.  See :func:`sign` for the exact construction.
    """
    return hashlib.sha256(b"verify-hint" + public.material).digest()


@dataclass(frozen=True)
class Signature:
    """A simulated signature: tag plus the signer's public key."""

    tag: bytes
    signer: PublicKey

    def hex(self) -> str:
        """Hex rendering of the tag (for traces)."""
        return self.tag.hex()


def sign(keypair: KeyPair, message: bytes) -> Signature:
    """Produce a simulated signature of ``message`` under ``keypair``.

    The tag binds the message to the keypair's private half *and* to the
    public half, so a verifier holding only the public key can check it via
    :func:`verify` (which reconstructs the same binding through the keypair
    registry trick below), while no other actor can forge it without the
    private bytes.
    """
    if not isinstance(message, (bytes, bytearray)):
        raise TypeError("message must be bytes")
    binding = hashlib.sha256(_SIGNING_CONTEXT + keypair.private).digest()
    tag = hmac.new(binding, bytes(message), hashlib.sha256).digest()
    _register_binding(keypair.public, binding)
    return Signature(tag=tag, signer=keypair.public)


# ----------------------------------------------------------------------
# Verification support
# ----------------------------------------------------------------------
# Real public-key signatures are verifiable from the public key alone.  Our
# simulated keys have no algebraic structure, so the module keeps a process-
# local registry mapping public keys to their signing binding the first time
# the owner signs something.  Verifiers never see private key bytes; they only
# use the registry, mirroring "the verifier knows the public key".  Actors that
# try to sign for a public key they do not own simply cannot produce a valid
# tag because they lack the binding.
_BINDINGS: dict[bytes, bytes] = {}


def _register_binding(public: PublicKey, binding: bytes) -> None:
    _BINDINGS.setdefault(public.material, binding)


def _binding_for(public: PublicKey) -> Optional[bytes]:
    return _BINDINGS.get(public.material)


def verify(public: PublicKey, message: bytes, signature: Signature) -> bool:
    """Check that ``signature`` is a valid tag over ``message`` by ``public``."""
    if not isinstance(signature, Signature):
        raise TypeError("signature must be a Signature instance")
    if signature.signer.material != public.material:
        return False
    binding = _binding_for(public)
    if binding is None:
        return False
    expected = hmac.new(binding, bytes(message), hashlib.sha256).digest()
    return hmac.compare_digest(expected, signature.tag)


def require_valid(public: PublicKey, message: bytes, signature: Signature) -> None:
    """Raise :class:`SignatureError` unless the signature verifies."""
    if not verify(public, message, signature):
        raise SignatureError("signature verification failed")


def reset_registry() -> None:
    """Clear the process-local binding registry (used by tests)."""
    _BINDINGS.clear()
