"""The bench-trajectory reporter renders tables and SVG from the runs list."""

from __future__ import annotations

import json

import pytest

report_trajectory = pytest.importorskip("benchmarks.report_trajectory")

SAMPLE = {
    "benchmark": "graph_kernels",
    "runs": [
        {"pr": "PR 2", "rows": [{"n": 1000, "speedup": 5.3}, {"n": 20000, "speedup": 12.2}]},
        {
            "pr": "PR 3",
            "rows": [{"n": 1000, "speedup": 26.8}, {"n": 20000, "speedup": 25.3}],
            "batched_bfs": [{"n": 100000, "speedup": 6.6}],
            "soap_campaign": {"n": 20000, "speedup": 5.6},
        },
        {"pr": "PR 3 (cli smoke)", "rows": [{"n": 1000, "speedup": 1.0}]},
        {
            "pr": "PR 4",
            "rows": [{"n": 20000, "speedup": 25.0}],
            "full_closeness": {"n": 100000, "speedup": 4.4},
            "sparse_frontier": {"n": 100000, "speedup": 53.8},
        },
    ],
}


@pytest.fixture
def trajectory(tmp_path):
    path = tmp_path / "BENCH_graph_kernels.json"
    path.write_text(json.dumps(SAMPLE))
    return path


def test_smoke_entries_are_ignored(trajectory):
    runs = report_trajectory.load_runs(trajectory)
    assert [run["pr"] for run in runs] == ["PR 2", "PR 3", "PR 4"]


def test_markdown_table_has_one_column_per_pr(trajectory):
    table = report_trajectory.render_markdown(report_trajectory.load_runs(trajectory))
    assert "| workload | PR 2 | PR 3 | PR 4 |" in table
    assert "| kernels n=20,000 | 12.2x | 25.3x | 25.0x |" in table
    # Workloads that did not exist in an earlier PR get a placeholder cell.
    assert "| full closeness n=100,000 | — | — | 4.4x |" in table
    assert "| ring diameter n=100,000 | — | — | 53.8x |" in table


def test_svg_contains_every_series_and_axis(trajectory):
    svg = report_trajectory.render_svg(report_trajectory.load_runs(trajectory))
    assert svg.startswith("<svg ") and svg.rstrip().endswith("</svg>")
    for label in ("PR 2", "PR 3", "PR 4"):
        assert label in svg
    for series in ("kernels n=20,000", "full closeness n=100,000"):
        assert series in svg
    assert "polyline" in svg  # multi-PR series draw a line, not just points


def test_write_report_produces_both_artifacts(trajectory, tmp_path):
    out = tmp_path / "artifacts"
    out.mkdir()
    markdown_path, svg_path = report_trajectory.write_report(trajectory, out)
    assert markdown_path.exists() and svg_path.exists()
    assert markdown_path.name == "BENCH_trajectory.md"
    assert svg_path.read_text().count("<circle") >= 6


def test_cli_entrypoint(trajectory, tmp_path, capsys):
    exit_code = report_trajectory.main(
        ["--json", str(trajectory), "--output-dir", str(tmp_path), "--quiet"]
    )
    assert exit_code == 0
    printed = capsys.readouterr().out
    assert "BENCH_trajectory.md" in printed
