"""Tor relays (Onion Routers) in the simulated network.

Relays matter to the reproduction for two reasons: the HSDir fingerprint ring
(Figure 2) determines where hidden-service descriptors live, and the HSDir
flag's 25-hour uptime requirement is exactly the hurdle an adversary must clear
to position interception relays (section VI-A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Set

from repro.crypto.keys import KeyPair

#: Hours of continuous uptime required before a relay receives the HSDir flag.
HSDIR_UPTIME_HOURS = 25.0


class RelayFlag(enum.Enum):
    """Subset of Tor consensus flags relevant to the simulation."""

    RUNNING = "Running"
    STABLE = "Stable"
    GUARD = "Guard"
    EXIT = "Exit"
    HSDIR = "HSDir"


@dataclass
class Relay:
    """One simulated onion router.

    Attributes
    ----------
    nickname:
        Human-readable name (unique per network, enforced by the authority).
    keypair:
        Identity keypair; the relay fingerprint is derived from its public key.
    joined_at:
        Simulated time at which the relay came online.
    bandwidth:
        Abstract bandwidth weight used by path selection.
    is_adversarial:
        Marks relays injected by a defender/adversary (HSDir interception).
    """

    nickname: str
    keypair: KeyPair
    joined_at: float
    bandwidth: float = 1.0
    is_adversarial: bool = False
    flags: Set[RelayFlag] = field(default_factory=lambda: {RelayFlag.RUNNING})
    went_offline_at: Optional[float] = None

    @property
    def fingerprint(self) -> bytes:
        """20-byte relay fingerprint (truncated SHA-1 of the public key)."""
        return self.keypair.public_fingerprint()

    @property
    def fingerprint_hex(self) -> str:
        """Hex string form of the fingerprint (consensus rendering)."""
        return self.fingerprint.hex()

    @property
    def is_online(self) -> bool:
        """Whether the relay is currently part of the network."""
        return self.went_offline_at is None

    def uptime_hours(self, now: float) -> float:
        """Continuous uptime in hours at simulated time ``now``."""
        if not self.is_online:
            return 0.0
        return max(0.0, (now - self.joined_at) / 3600.0)

    def qualifies_for_hsdir(self, now: float) -> bool:
        """Whether the relay has been up long enough to earn the HSDir flag."""
        return self.is_online and self.uptime_hours(now) >= HSDIR_UPTIME_HOURS

    def go_offline(self, now: float) -> None:
        """Mark the relay as having left the network."""
        self.went_offline_at = now
        self.flags.discard(RelayFlag.RUNNING)
        self.flags.discard(RelayFlag.HSDIR)

    def rejoin(self, now: float) -> None:
        """Bring the relay back online; uptime (and HSDir eligibility) resets."""
        self.joined_at = now
        self.went_offline_at = None
        self.flags.add(RelayFlag.RUNNING)

    def has_flag(self, flag: RelayFlag) -> bool:
        """Whether the relay currently holds ``flag``."""
        return flag in self.flags
