"""Collector semantics: null singleton, counters/gauges/spans, merging.

The disabled path is the one that runs on every ordinary invocation, so it
gets the strictest contract: the active collector is the *same* no-op
singleton every time, and exercising it allocates nothing.
"""

from __future__ import annotations

import threading
import tracemalloc

import pytest

from repro.obs import telemetry
from repro.obs.telemetry import NULL, Collector, NullCollector


class TestDisabledPath:
    def test_current_is_the_null_singleton(self):
        assert telemetry.current() is NULL
        assert telemetry.current() is telemetry.current()
        assert not telemetry.enabled()
        assert NULL.enabled is False

    def test_null_span_is_one_reusable_object(self):
        assert NULL.span("a") is NULL.span("b")
        with NULL.span("x") as span:
            assert span is NULL.span("y")

    def test_disabled_path_allocates_nothing(self):
        """The no-op calls create no objects -- provably zero-cost when off."""
        tel = telemetry.current()
        span = tel.span  # bound-method lookups themselves allocate; hoist
        count = tel.count
        gauge = tel.gauge
        # Warm up any lazy interpreter state before measuring.
        for _ in range(3):
            count("wave.levels")
            gauge("wave.popcount_backend", "native")
            with span("runner.unit"):
                pass
        module_file = telemetry.__file__
        tracemalloc.start()
        try:
            for _ in range(1000):
                count("wave.levels")
                gauge("wave.popcount_backend", "native")
                with span("runner.unit"):
                    pass
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        inside = snapshot.filter_traces(
            [tracemalloc.Filter(True, module_file)]
        ).statistics("lineno")
        assert inside == [], inside

    def test_null_collector_accepts_all_calls(self):
        NULL.count("a")
        NULL.count("a", 5)
        NULL.gauge("g", 1)
        NULL.record_span("s", 0.5)
        NULL.section("sec", {"x": 1})
        NULL.merge_snapshot({"counters": {"a": 1}})
        snap = NULL.snapshot()
        assert snap["counters"] == {} and snap["spans"] == {}


class TestEnableDisable:
    def test_enable_installs_a_fresh_collector(self):
        collector = telemetry.enable(label="t")
        assert telemetry.current() is collector
        assert collector.enabled and collector.label == "t"
        second = telemetry.enable()
        assert second is not collector

    def test_disable_returns_the_previous_collector(self):
        collector = telemetry.enable()
        assert telemetry.disable() is collector
        assert telemetry.current() is NULL
        assert telemetry.disable() is None  # already off

    def test_collecting_scope_restores_previous(self):
        outer = telemetry.enable(label="outer")
        with telemetry.collecting(label="inner") as inner:
            assert telemetry.current() is inner
            inner.count("x")
        assert telemetry.current() is outer
        assert outer.counter("x") == 0

    def test_collecting_restores_null_after_exception(self):
        with pytest.raises(RuntimeError):
            with telemetry.collecting():
                raise RuntimeError("boom")
        assert telemetry.current() is NULL


class TestCollector:
    def test_counters_accumulate(self):
        c = Collector()
        c.count("hits")
        c.count("hits", 4)
        assert c.counter("hits") == 5
        assert c.counter("never") == 0
        assert c.snapshot()["counters"] == {"hits": 5}

    def test_gauges_last_write_wins(self):
        c = Collector()
        c.gauge("backend", "lut")
        c.gauge("backend", "native")
        assert c.snapshot()["gauges"] == {"backend": "native"}

    def test_span_records_count_total_max(self):
        c = Collector()
        c.record_span("unit", 0.25)
        c.record_span("unit", 1.0)
        c.record_span("unit", 0.5)
        stats = c.snapshot()["spans"]["unit"]
        assert stats["count"] == 3
        assert stats["total_s"] == pytest.approx(1.75)
        assert stats["max_s"] == pytest.approx(1.0)

    def test_span_context_manager_measures_time(self):
        c = Collector()
        with c.span("sleepy"):
            pass
        stats = c.snapshot()["spans"]["sleepy"]
        assert stats["count"] == 1
        assert 0.0 <= stats["total_s"] < 1.0

    def test_sections_attach_wholesale(self):
        c = Collector()
        c.section("sim", {"series": {"pop": {"points": 3}}})
        assert c.snapshot()["sections"]["sim"]["series"]["pop"]["points"] == 3

    def test_snapshot_is_a_copy(self):
        c = Collector()
        c.count("a")
        snap = c.snapshot()
        snap["counters"]["a"] = 99
        assert c.counter("a") == 1

    def test_thread_safety_exact_totals(self):
        c = Collector()

        def hammer():
            for _ in range(2000):
                c.count("n")
                c.record_span("s", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.counter("n") == 8000
        assert c.snapshot()["spans"]["s"]["count"] == 8000


class TestMergeSnapshot:
    def test_counters_add_spans_combine_gauges_overwrite(self):
        parent = Collector(label="parent")
        parent.count("wave.levels", 3)
        parent.record_span("runner.unit", 0.5)
        parent.gauge("backend", "lut")

        worker = Collector(label="worker")
        worker.count("wave.levels", 7)
        worker.count("wave.dispatch.dense", 2)
        worker.record_span("runner.unit", 2.0)
        worker.record_span("runner.unit", 0.1)
        worker.gauge("backend", "native")
        worker.section("sim", {"x": 1})

        parent.merge_snapshot(worker.snapshot())
        snap = parent.snapshot()
        assert snap["counters"] == {"wave.levels": 10, "wave.dispatch.dense": 2}
        unit = snap["spans"]["runner.unit"]
        assert unit["count"] == 3
        assert unit["total_s"] == pytest.approx(2.6)
        assert unit["max_s"] == pytest.approx(2.0)
        assert snap["gauges"]["backend"] == "native"
        assert snap["sections"]["sim"] == {"x": 1}

    def test_merge_with_prefix_keeps_workers_apart(self):
        parent = Collector()
        worker = Collector()
        worker.count("runner.unit", 2)
        worker.record_span("runner.unit", 1.5)
        parent.merge_snapshot(worker.snapshot(), prefix="w0.")
        snap = parent.snapshot()
        assert snap["counters"] == {"w0.runner.unit": 2}
        assert "w0.runner.unit" in snap["spans"]

    def test_merge_is_associative_over_workers(self):
        """merge(a then b) == merge(b then a) for counters and span stats."""
        a = Collector(); a.count("n", 3); a.record_span("s", 1.0)
        b = Collector(); b.count("n", 4); b.record_span("s", 2.0)
        left = Collector()
        left.merge_snapshot(a.snapshot())
        left.merge_snapshot(b.snapshot())
        right = Collector()
        right.merge_snapshot(b.snapshot())
        right.merge_snapshot(a.snapshot())
        assert left.snapshot()["counters"] == right.snapshot()["counters"]
        assert left.snapshot()["spans"] == right.snapshot()["spans"]

    def test_snapshot_round_trips_through_pickle_shape(self):
        """Snapshots are plain dicts of primitives -- pool-transport safe."""
        import json

        c = Collector(label="worker-shard")
        c.count("runner.path_shard.sources", 40)
        c.record_span("runner.path_shard", 0.25)
        c.gauge("csr.ghosts", 0)
        restored = json.loads(json.dumps(c.snapshot()))
        parent = Collector()
        parent.merge_snapshot(restored)
        assert parent.counter("runner.path_shard.sources") == 40


class TestEnvKnob:
    def test_env_report_path(self, monkeypatch):
        monkeypatch.delenv(telemetry.ENV_VAR, raising=False)
        assert telemetry.env_report_path() is None
        monkeypatch.setenv(telemetry.ENV_VAR, "  ")
        assert telemetry.env_report_path() is None
        monkeypatch.setenv(telemetry.ENV_VAR, "out/report.json")
        assert telemetry.env_report_path() == "out/report.json"

    def test_null_collector_class_is_importable_for_isinstance(self):
        assert isinstance(NULL, NullCollector)
