"""The LUT popcount fallback must be bit-identical to the native path.

``repro.graphs.fast`` counts per-row frontier bits with ``np.bitwise_count``
when numpy >= 2.0 provides it, and with a byte-lookup-table fold otherwise.
The fallback used to be exercised only on numpy < 1.26 installs; these tests
(and a CI step running the graphs suite under ``REPRO_FORCE_POPCOUNT_LUT=1``)
force-select it on any numpy and assert that every wave-engine result -- the
full matrix of topologies, step modes and estimators -- matches the native
path and the pure-Python reference exactly.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.errors import ConfigError
from repro.graphs import backend, fast, metrics
from repro.graphs.generators import k_regular_graph, ring_graph

from tests.graphs.test_wave_engine import STEP_ZOO


@pytest.fixture
def forced_lut(monkeypatch):
    """Force the LUT popcount path for one test, restoring afterwards.

    Teardown first undoes the monkeypatch (restoring whatever the *ambient*
    environment says -- the LUT CI job keeps the flag set for the whole run)
    and only then re-selects, so the rest of the session stays on the
    environment-configured path.
    """
    monkeypatch.setenv(fast.POPCOUNT_LUT_ENV_VAR, "1")
    assert fast.configure_popcount() == "lut"
    yield
    monkeypatch.undo()
    fast.configure_popcount()


def test_native_path_selected_by_default(monkeypatch):
    """With the flag unset, the native kernel wins whenever numpy has one.

    (The CI job that runs this suite under ``REPRO_FORCE_POPCOUNT_LUT=1``
    still exercises the *unset* branch here -- the monkeypatch clears it.)
    """
    monkeypatch.delenv(fast.POPCOUNT_LUT_ENV_VAR, raising=False)
    try:
        if hasattr(np, "bitwise_count"):
            assert fast.configure_popcount() == "native"
            assert fast._row_popcounts is fast._row_popcounts_native
        else:  # pragma: no cover - numpy < 2.0
            assert fast.configure_popcount() == "lut"
    finally:
        monkeypatch.undo()
        fast.configure_popcount()


@pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
def test_truthy_env_values_force_lut(monkeypatch, value):
    monkeypatch.setenv(fast.POPCOUNT_LUT_ENV_VAR, value)
    try:
        assert fast.configure_popcount() == "lut"
        assert fast._row_popcounts is fast._row_popcounts_lut
    finally:
        monkeypatch.undo()
        fast.configure_popcount()


@pytest.mark.parametrize("value", ["2", "lut", "native", "tru"])
def test_invalid_env_value_raises_config_error(monkeypatch, value):
    monkeypatch.setenv(fast.POPCOUNT_LUT_ENV_VAR, value)
    try:
        with pytest.raises(ConfigError):
            fast.configure_popcount()
    finally:
        monkeypatch.undo()
        fast.configure_popcount()


def test_lut_kernel_matches_native_on_random_words():
    rng = np.random.default_rng(7)
    for shape in ((1, 1), (33, 1), (97, 3), (5, 64), (0, 2)):
        words = rng.integers(0, 2 ** 63, size=shape, dtype=np.uint64)
        # rng.integers caps below 2**63, so set bit 63 explicitly on the
        # later *rows* (every word column included) to cover the high bit.
        words[words.shape[0] // 2 :] |= np.uint64(1) << np.uint64(63)
        expected = fast._frontier_bits(words, 64 * shape[1]).sum(
            axis=1, dtype=np.int64
        )
        assert np.array_equal(fast._row_popcounts_lut(words), expected)
        if fast._row_popcounts_native is not None:
            assert np.array_equal(fast._row_popcounts_native(words), expected)


@pytest.mark.parametrize("name,graph", STEP_ZOO, ids=[n for n, _ in STEP_ZOO])
@pytest.mark.parametrize("mode", ["dense", "sparse", "pull", "adaptive"])
def test_lut_wave_matrix_bit_identical(forced_lut, monkeypatch, name, graph, mode):
    """The full wave-engine matrix under the forced LUT path: exact parity."""
    monkeypatch.setattr(fast, "WAVE_STEP_MODE", mode)
    assert fast.diameter(graph, sample_size=12, rng=random.Random(1)) == (
        metrics.diameter(graph, sample_size=12, rng=random.Random(1))
    )
    assert fast.average_closeness_centrality(graph) == (
        metrics.average_closeness_centrality(graph)
    )
    assert fast.average_shortest_path_length(
        graph, sample_size=9, rng=random.Random(2)
    ) == metrics.average_shortest_path_length(
        graph, sample_size=9, rng=random.Random(2)
    )
    assert fast.full_path_metrics(graph) == metrics.full_path_metrics(graph)


def test_lut_multiword_wave_identical(forced_lut):
    graph = k_regular_graph(300, 6, seed=31)
    with backend.using_bfs_batch(512):
        batched = fast.shortest_path_lengths_from_many(graph, graph.nodes())
    for source, distances in zip(graph.nodes(), batched):
        assert distances == metrics.shortest_path_lengths_from(graph, source)


def test_lut_full_population_goldens(forced_lut):
    from tests.graphs.test_wave_engine import (
        FULL_PATH_GOLDEN_800,
        FULL_POPULATION_GOLDEN_800,
    )

    graph = k_regular_graph(800, 6, seed=11)
    assert fast.average_closeness_centrality(graph) == FULL_POPULATION_GOLDEN_800
    assert fast.full_path_metrics(graph) == FULL_PATH_GOLDEN_800


def test_lut_ring_sparse_frontier_identical(forced_lut):
    graph = ring_graph(240)
    assert fast.diameter(graph, sample_size=8, rng=random.Random(3)) == (
        metrics.diameter(graph, sample_size=8, rng=random.Random(3))
    )
