"""Directory authority and consensus documents.

"The list of Tor relays, which is called the consensus document, is published
and updated every hour by the Tor authorities" (paper, section III).  The
consensus is what hidden services and clients consult to find the HSDir ring,
so it is the natural injection point for the HSDir-interception mitigation of
section VI-A: an adversarial relay only becomes useful once it has been online
for 25 hours *and* appears with the HSDir flag in a published consensus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.tor.relay import Relay, RelayFlag

#: Seconds between consensus publications.
CONSENSUS_INTERVAL = 3600.0


@dataclass(frozen=True)
class ConsensusEntry:
    """One relay's row in a consensus document."""

    nickname: str
    fingerprint: bytes
    flags: frozenset
    bandwidth: float
    is_adversarial: bool

    def has_flag(self, flag: RelayFlag) -> bool:
        """Whether the entry carries ``flag``."""
        return flag in self.flags


@dataclass
class ConsensusDocument:
    """A published snapshot of the relay population."""

    published_at: float
    valid_until: float
    entries: List[ConsensusEntry] = field(default_factory=list)

    def relays_with_flag(self, flag: RelayFlag) -> List[ConsensusEntry]:
        """Entries carrying ``flag``."""
        return [entry for entry in self.entries if entry.has_flag(flag)]

    def hsdirs(self) -> List[ConsensusEntry]:
        """Entries eligible to store hidden-service descriptors."""
        return self.relays_with_flag(RelayFlag.HSDIR)

    def hsdir_ring(self) -> List[ConsensusEntry]:
        """HSDir entries sorted by fingerprint -- the ring of Figure 2."""
        return sorted(self.hsdirs(), key=lambda entry: entry.fingerprint)

    def find(self, fingerprint: bytes) -> Optional[ConsensusEntry]:
        """Entry with the given fingerprint, if present."""
        for entry in self.entries:
            if entry.fingerprint == fingerprint:
                return entry
        return None

    def __len__(self) -> int:
        return len(self.entries)


class DirectoryAuthority:
    """Produces hourly consensus documents from the live relay population."""

    def __init__(self) -> None:
        self._relays: Dict[bytes, Relay] = {}
        self._latest: Optional[ConsensusDocument] = None
        self.consensus_history: List[ConsensusDocument] = []

    # ------------------------------------------------------------------
    # Relay registration
    # ------------------------------------------------------------------
    def register(self, relay: Relay) -> None:
        """Add a relay to the population the authority votes on."""
        if relay.fingerprint in self._relays:
            raise ValueError(f"relay with fingerprint {relay.fingerprint_hex} already registered")
        self._relays[relay.fingerprint] = relay

    def deregister(self, fingerprint: bytes) -> None:
        """Remove a relay from the population."""
        self._relays.pop(fingerprint, None)

    def relay(self, fingerprint: bytes) -> Optional[Relay]:
        """Look up a registered relay by fingerprint."""
        return self._relays.get(fingerprint)

    def relays(self) -> List[Relay]:
        """All registered relays."""
        return list(self._relays.values())

    # ------------------------------------------------------------------
    # Consensus
    # ------------------------------------------------------------------
    def publish_consensus(self, now: float) -> ConsensusDocument:
        """Assign flags based on uptime and publish a fresh consensus."""
        entries: List[ConsensusEntry] = []
        for relay in self._relays.values():
            if not relay.is_online:
                continue
            flags = {RelayFlag.RUNNING}
            if relay.uptime_hours(now) >= 8:
                flags.add(RelayFlag.STABLE)
            if relay.qualifies_for_hsdir(now):
                flags.add(RelayFlag.HSDIR)
                relay.flags.add(RelayFlag.HSDIR)
            else:
                relay.flags.discard(RelayFlag.HSDIR)
            entries.append(
                ConsensusEntry(
                    nickname=relay.nickname,
                    fingerprint=relay.fingerprint,
                    flags=frozenset(flags),
                    bandwidth=relay.bandwidth,
                    is_adversarial=relay.is_adversarial,
                )
            )
        entries.sort(key=lambda entry: entry.fingerprint)
        document = ConsensusDocument(
            published_at=now,
            valid_until=now + CONSENSUS_INTERVAL,
            entries=entries,
        )
        self._latest = document
        self.consensus_history.append(document)
        return document

    @property
    def latest_consensus(self) -> Optional[ConsensusDocument]:
        """Most recently published consensus, if any."""
        return self._latest
