"""Hidden-service hosts and rendezvous connections.

Models the server side of Figure 1: a host picks introduction points, signs
and publishes a descriptor, and accepts rendezvous connections from clients
that looked the descriptor up.  Connections are mutually anonymous by
construction -- neither endpoint object ever exposes the other's "location"
(in the simulation, its registry handle), only the onion address.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.crypto.keys import KeyPair
from repro.tor.circuit import Circuit, rendezvous_latency
from repro.tor.descriptor import HiddenServiceDescriptor
from repro.tor.onion_address import OnionAddress, onion_address_from_public_key

#: A service handler receives (payload, connection) and may return a reply.
ServiceHandler = Callable[[bytes, "RendezvousConnection"], Optional[bytes]]

_connection_ids = itertools.count(1)


@dataclass
class HiddenServiceHost:
    """One hidden service hosted inside the simulated Tor network."""

    keypair: KeyPair
    handler: ServiceHandler
    introduction_points: List[bytes] = field(default_factory=list)
    descriptor_cookie: bytes = b""
    created_at: float = 0.0
    is_online: bool = True
    descriptors_published: int = 0
    connections_accepted: int = 0

    @property
    def onion_address(self) -> OnionAddress:
        """The service's current ``.onion`` hostname."""
        return onion_address_from_public_key(self.keypair)

    def build_descriptor(self, now: float) -> HiddenServiceDescriptor:
        """Create and sign a fresh descriptor for the current intro points."""
        if not self.introduction_points:
            raise ValueError("cannot publish a descriptor with no introduction points")
        descriptor = HiddenServiceDescriptor(
            service_key=self.keypair.public,
            introduction_points=list(self.introduction_points),
            published_at=now,
            descriptor_cookie=self.descriptor_cookie,
        )
        return descriptor.signed_by(self.keypair)

    def deliver(self, payload: bytes, connection: "RendezvousConnection") -> Optional[bytes]:
        """Hand an inbound payload to the application handler."""
        if not self.is_online:
            raise ServiceUnreachable(f"service {self.onion_address} is offline")
        self.connections_accepted += 1
        return self.handler(payload, connection)

    def go_offline(self) -> None:
        """Stop accepting connections (e.g. the bot was cleaned up)."""
        self.is_online = False

    def rekey(self, new_keypair: KeyPair) -> OnionAddress:
        """Swap in a new identity keypair (the address-rotation primitive)."""
        self.keypair = new_keypair
        return self.onion_address


class ServiceUnreachable(RuntimeError):
    """Raised when a client cannot reach a hidden service.

    Covers every failure mode the paper's mitigations exploit: the descriptor
    cannot be fetched (censoring HSDirs), the service is offline (node taken
    down), or no introduction point answers.
    """


@dataclass
class RendezvousConnection:
    """An established, mutually anonymous connection to a hidden service."""

    client_label: str
    service_address: OnionAddress
    client_circuit: Circuit
    service_circuit: Circuit
    established_at: float
    connection_id: int = field(default_factory=lambda: next(_connection_ids))
    closed_at: Optional[float] = None
    payloads_exchanged: int = 0

    @property
    def is_open(self) -> bool:
        """Whether the connection can still carry payloads."""
        return self.closed_at is None and self.client_circuit.is_open and self.service_circuit.is_open

    def latency(self) -> float:
        """End-to-end latency estimate across both spliced circuits."""
        return rendezvous_latency(self.client_circuit, self.service_circuit)

    def close(self, now: float) -> None:
        """Close the connection and both underlying circuits."""
        if self.closed_at is None:
            self.closed_at = now
            self.client_circuit.close(now)
            self.service_circuit.close(now)

    def record_exchange(self, cells: int) -> None:
        """Account for one payload exchange of ``cells`` fixed-size cells."""
        self.payloads_exchanged += 1
        self.client_circuit.record_cells(cells)
        self.service_circuit.record_cells(cells)
