"""Deterministic fault injection and the recovery paths it drives.

The crash-safety contract, each clause locked by a differential against a
fault-free run:

* the spec grammar fails loudly (``ConfigError``) on typos, and armed
  clauses fire at exact per-site invocation counts (cross-process);
* a killed worker, a hung worker (watchdog), and a transient shm-attach
  failure all recover with aggregates **bit-identical** to a clean run --
  under the default backend, ``REPRO_GRAPH_BACKEND=fast`` and the forced
  popcount-LUT matrix alike;
* exhausted recovery degrades to a serial in-parent drain (or, with
  ``REPRO_DEGRADED_SERIAL=0``, a fail-fast :class:`PoolError`);
* an interrupt mid-campaign (the SIGINT path, injected deterministically)
  exits 130, leaves no ``repro-pool-*`` segment in ``/dev/shm``, and the
  journal resumes bit-identically;
* cache read/write faults are absorbed (recompute / in-memory result),
  never fatal.
"""

from __future__ import annotations

import glob
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.errors import ConfigError
from repro.graphs import backend
from repro.obs import telemetry
from repro.runner import faults
from repro.runner.cache import ResultCache
from repro.runner.executor import run_scenario
from repro.runner.pool import (
    SHM_PREFIX,
    PoolError,
    PoolTaskError,
    shutdown_pools,
)
from repro.runner.spec import ScenarioSpec

np = pytest.importorskip("numpy")


def _pool_segments():
    return glob.glob(f"/dev/shm/{SHM_PREFIX}*")


@pytest.fixture(autouse=True)
def _clean_plane(monkeypatch):
    """Each test starts with no armed faults, cold pools, and no leaks."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    monkeypatch.delenv(faults.STATE_ENV_VAR, raising=False)
    faults.reset()
    shutdown_pools()
    yield
    shutdown_pools()
    faults.reset()
    assert _pool_segments() == []


class TestSpecGrammar:
    def test_defaults_fill_in(self):
        (clause,) = faults.parse_spec("pool.task=kill")
        assert clause.site == "pool.task"
        assert clause.action == "kill"
        assert clause.arg is None
        assert clause.at == 1

    def test_full_clause_and_multiple(self):
        clauses = faults.parse_spec("pool.task=delay(0.2)@3, cache.read=oserror@2")
        assert [c.spec() for c in clauses] == [
            "pool.task=delay(0.2)@3",
            "cache.read=oserror@2",
        ]

    @pytest.mark.parametrize(
        "spec, fragment",
        [
            ("nope.site=kill", "unknown fault site"),
            ("pool.task=explode", "unknown fault action"),
            ("pool.task=delay(fast)", "non-numeric argument"),
            ("pool.task=kill@0", "invocation >= 1"),
            ("garbage", "invalid fault clause"),
        ],
    )
    def test_malformed_specs_fail_loudly(self, spec, fragment):
        with pytest.raises(ConfigError, match=fragment):
            faults.parse_spec(spec)

    def test_install_rejects_bad_spec_and_arms_good_one(self):
        with pytest.raises(ConfigError):
            faults.install("pool.task=explode")
        plane = faults.install("cache.read=raise@2")
        assert plane is not None
        assert faults.active() is plane
        faults.install("")
        assert faults.active() is None


class TestInvocationCounters:
    def test_fires_exactly_at_the_armed_invocation(self):
        faults.install("cache.read=raise@2")
        faults.fault_point("cache.read")  # invocation 1: silent
        with pytest.raises(faults.InjectedFault):
            faults.fault_point("cache.read")  # invocation 2: fires
        faults.fault_point("cache.read")  # invocation 3: spent

    def test_sites_count_independently(self):
        faults.install("cache.read=raise@1")
        faults.fault_point("cache.write")  # different site: no effect
        with pytest.raises(faults.InjectedFault):
            faults.fault_point("cache.read")

    def test_reinstall_restarts_the_counters(self):
        faults.install("cache.read=raise@1")
        with pytest.raises(faults.InjectedFault):
            faults.fault_point("cache.read")
        faults.install("cache.read=raise@1")
        with pytest.raises(faults.InjectedFault):
            faults.fault_point("cache.read")


class TestCacheFaults:
    def _unit(self):
        spec = ScenarioSpec(name="fig3-walkthrough", params={}, trials=1, seed=5)
        return spec.work_units()[0]

    def test_read_fault_recomputes_and_counts_unreadable(self, tmp_path):
        cache = ResultCache(tmp_path)
        unit = self._unit()
        cache.put(unit, "v", {"m": 1.0})
        faults.install("cache.read=oserror@1")
        assert cache.get(unit, "v") is None
        assert cache.unreadable == 1
        # The entry was not evicted; the next (unfaulted) read serves it.
        assert cache.get(unit, "v") == {"m": 1.0}

    def test_write_fault_is_absorbed_and_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        unit = self._unit()
        faults.install("cache.write=oserror@1")
        with telemetry.collecting() as collector:
            assert cache.put(unit, "v", {"m": 1.0}) is None
        assert cache.unwritable == 1
        assert collector.snapshot()["counters"]["runner.cache.write_failed"] == 1
        # Nothing landed on disk; a later write succeeds.
        assert cache.get(unit, "v") is None
        assert cache.put(unit, "v", {"m": 1.0}) is not None

    def test_campaign_survives_an_unwritable_cache(self, tmp_path):
        faults.install("cache.write=oserror@1")
        result = run_scenario(
            "fig3-walkthrough", trials=2, seed=5, cache=ResultCache(tmp_path)
        )
        clean = run_scenario("fig3-walkthrough", trials=2, seed=5)
        assert result.unit_metrics == clean.unit_metrics


#: (backend policy override, force the popcount LUT) -- the satellite matrix.
BACKEND_MATRIX = [
    pytest.param((None, False), id="backend-auto"),
    pytest.param(("fast", False), id="backend-fast"),
    pytest.param(("fast", True), id="backend-fast-lut"),
]


def _campaign(**overrides):
    """A 6-unit campaign at shard_size=1 so every unit is its own pool task
    (``pool.task`` invocation counts then address individual units)."""
    from repro.runner.executor import execute

    kwargs = dict(workers=1, cache=None)
    kwargs.update(overrides)
    spec = ScenarioSpec(
        name="soap-campaign", params={"n": 30}, grid={}, trials=6, seed=3
    )
    return execute(spec, shard_size=1, **kwargs)


@pytest.fixture
def forced_backend(request, monkeypatch):
    """Apply one (backend, LUT) matrix point for the duration of a test."""
    policy, lut = request.param
    if lut:
        monkeypatch.setenv(backend.POPCOUNT_LUT_ENV_VAR, "1")
    if policy is None:
        yield
        return
    with backend.using(policy):
        yield


class TestPoolChaosDifferentials:
    def test_killed_worker_recovers_bit_identically(self):
        baseline = _campaign(workers=2)
        shutdown_pools()
        faults.install("pool.task=kill@2")
        with telemetry.collecting() as collector:
            result = _campaign(workers=2)
        assert result.unit_metrics == baseline.unit_metrics
        assert collector.snapshot()["counters"]["runner.pool.respawn"] == 1

    @pytest.mark.parametrize("forced_backend", BACKEND_MATRIX, indirect=True)
    def test_watchdog_converts_a_hang_into_recovery(
        self, forced_backend, monkeypatch
    ):
        baseline = _campaign(workers=1)
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "2")
        faults.install("pool.task=hang@1")
        with telemetry.collecting() as collector:
            result = _campaign(workers=2)
        assert result.unit_metrics == baseline.unit_metrics
        counters = collector.snapshot()["counters"]
        assert counters["runner.watchdog.kill"] >= 1
        assert counters["runner.pool.respawn"] == 1

    def test_transient_shm_attach_failure_retries_once(self):
        graph = _sharded_graph()
        with backend.using("fast"):
            from repro.graphs import fast

            serial = fast.full_path_metrics(graph)
            faults.install("pool.shm_attach=oserror@1")
            from repro.runner.executor import sharded_full_path_metrics

            with telemetry.collecting() as collector:
                sharded = sharded_full_path_metrics(graph, workers=2)
        assert sharded == serial
        assert collector.snapshot()["counters"]["runner.retry"] == 1

    def test_exhausted_transient_retries_surface_as_task_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEGRADED_SERIAL", "0")
        graph = _sharded_graph()
        # Default budget is 1 retry; fail the first attach of both attempts.
        faults.install("pool.shm_attach=oserror@1,pool.shm_attach=oserror@2")
        with backend.using("fast"):
            from repro.runner.executor import sharded_full_path_metrics

            with pytest.raises(PoolTaskError, match="path-metric shard"):
                sharded_full_path_metrics(
                    graph, workers=2, shard_size=10_000
                )

    @pytest.mark.parametrize("forced_backend", BACKEND_MATRIX, indirect=True)
    def test_unhealthy_pool_degrades_to_serial_bit_identically(
        self, forced_backend
    ):
        baseline = _campaign(workers=1)
        faults.install("pool.task=kill@1,pool.task=kill@2,pool.task=kill@3")
        with telemetry.collecting() as collector:
            result = _campaign(workers=2)
        assert result.unit_metrics == baseline.unit_metrics
        assert collector.snapshot()["counters"]["runner.degraded_serial"] >= 1

    def test_degraded_serial_preserves_path_metric_exactness(self):
        graph = _sharded_graph()
        with backend.using("fast"):
            from repro.graphs import fast
            from repro.runner.executor import sharded_full_path_metrics

            serial = fast.full_path_metrics(graph)
            faults.install(
                "pool.path_task=kill@1,pool.path_task=kill@2,"
                "pool.path_task=kill@3"
            )
            with telemetry.collecting() as collector:
                sharded = sharded_full_path_metrics(graph, workers=2)
        assert sharded == serial
        assert collector.snapshot()["counters"]["runner.degraded_serial"] >= 1

    def test_degradation_disabled_fails_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEGRADED_SERIAL", "0")
        faults.install("pool.task=kill@1,pool.task=kill@2,pool.task=kill@3")
        with pytest.raises(PoolError, match="unfinished"):
            _campaign(workers=2)

    def test_retry_does_not_perturb_cache_keys(self, tmp_path):
        """A recovered campaign populates the same cache a clean one reads."""
        faults.install("pool.task=kill@2")
        chaotic = _campaign(workers=2, cache=ResultCache(tmp_path))
        shutdown_pools()
        faults.install("")
        replayed = _campaign(workers=2, cache=ResultCache(tmp_path))
        assert replayed.cache_hits == len(replayed.unit_metrics)
        assert replayed.unit_metrics == chaotic.unit_metrics


def _sharded_graph():
    from repro.graphs.generators import k_regular_graph

    return k_regular_graph(80, 4, seed=9)


class TestPolicyKnobs:
    @pytest.mark.parametrize(
        "var, value",
        [
            ("REPRO_TASK_TIMEOUT", "-1"),
            ("REPRO_TASK_TIMEOUT", "soon"),
            ("REPRO_TASK_RETRIES", "-2"),
            ("REPRO_RETRY_BACKOFF", "never"),
            ("REPRO_DEGRADED_SERIAL", "maybe"),
        ],
    )
    def test_invalid_values_raise_config_error(self, var, value, monkeypatch):
        from repro.runner import pool as pool_mod

        monkeypatch.setenv(var, value)
        policies = {
            "REPRO_TASK_TIMEOUT": pool_mod.task_timeout_policy,
            "REPRO_TASK_RETRIES": pool_mod.task_retries_policy,
            "REPRO_RETRY_BACKOFF": pool_mod.retry_backoff_policy,
            "REPRO_DEGRADED_SERIAL": pool_mod.degraded_serial_policy,
        }
        with pytest.raises(ConfigError, match=var):
            policies[var]()


class TestInterruptTeardown:
    """The SIGINT path, driven deterministically via an injected interrupt."""

    def _run_cli(self, tmp_path, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        env.pop(faults.ENV_VAR, None)
        env.pop(faults.STATE_ENV_VAR, None)
        return subprocess.run(
            [
                sys.executable, "-m", "repro.runner", "run", "soap-campaign",
                "--set", "n=30", "--trials", "6", "--seed", "3",
                "--workers", "2", "--quiet",
                "--cache-dir", str(tmp_path / "cache"),
                *extra,
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )

    def test_interrupt_exits_130_without_shm_leaks_then_resumes(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        interrupted = self._run_cli(
            tmp_path,
            "--journal", str(journal),
            "--inject-faults", "executor.unit=interrupt@3",
        )
        assert interrupted.returncode == 130, interrupted.stderr
        assert "interrupted" in interrupted.stderr
        assert _pool_segments() == []
        assert journal.exists()
        # The journal holds the three completed units; --resume replays
        # them and finishes the rest bit-identically to a clean run.
        resumed = self._run_cli(
            tmp_path, "--journal", str(journal), "--resume", "--no-cache",
            "--json", str(tmp_path / "resumed.json"),
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "3 replayed" in resumed.stdout
        clean = self._run_cli(
            tmp_path, "--no-journal", "--no-cache",
            "--json", str(tmp_path / "clean.json"),
        )
        assert clean.returncode == 0, clean.stderr
        resumed_rows = json.loads((tmp_path / "resumed.json").read_text())
        clean_rows = json.loads((tmp_path / "clean.json").read_text())
        assert resumed_rows == clean_rows
