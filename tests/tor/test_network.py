"""Tests for the integrated Tor network model."""

import pytest

from repro.crypto.keys import KeyPair
from repro.sim.engine import Simulator
from repro.tor.hidden_service import ServiceUnreachable
from repro.tor.network import TorNetwork, TorNetworkConfig
from repro.tor.relay import RelayFlag


def make_network(relays: int = 25, seed: int = 0) -> TorNetwork:
    simulator = Simulator(seed=seed)
    network = TorNetwork(simulator, TorNetworkConfig(num_relays=relays))
    network.bootstrap()
    return network


def echo_handler(payload: bytes, _connection) -> bytes:
    return b"echo:" + payload[:16]


class TestBootstrap:
    def test_bootstrap_creates_relays_and_consensus(self):
        network = make_network(relays=20)
        assert len(network.consensus) == 20

    def test_bootstrapped_relays_are_hsdir_eligible(self):
        network = make_network(relays=15)
        assert len(network.consensus.hsdirs()) == 15

    def test_hourly_consensus_process_runs(self):
        network = make_network()
        before = len(network.authority.consensus_history)
        network.simulator.run_for(3 * 3600.0 + 10)
        assert len(network.authority.consensus_history) >= before + 3

    def test_new_relay_not_hsdir_until_25_hours(self):
        network = make_network()
        relay = network.add_relay(nickname="newcomer")
        network.publish_consensus()
        entry = network.consensus.find(relay.fingerprint)
        assert entry is not None and not entry.has_flag(RelayFlag.HSDIR)
        network.simulator.run_for(26 * 3600.0)
        network.publish_consensus()
        entry = network.consensus.find(relay.fingerprint)
        assert entry.has_flag(RelayFlag.HSDIR)


class TestHiddenServiceHosting:
    def test_host_and_connect(self):
        network = make_network()
        host = network.host_service(KeyPair.from_seed(b"svc"), echo_handler)
        reply = network.send_to("client", host.onion_address, b"hello")
        assert reply == b"echo:hello"

    def test_descriptor_stored_on_responsible_hsdirs(self):
        network = make_network()
        host = network.host_service(KeyPair.from_seed(b"svc"), echo_handler)
        storing = network.hsdirs_storing(host.onion_address)
        assert 1 <= len(storing) <= 6

    def test_lookup_unknown_address_fails(self):
        network = make_network()
        unknown = KeyPair.from_seed(b"never-hosted")
        from repro.tor.onion_address import onion_address_from_public_key

        with pytest.raises(ServiceUnreachable):
            network.lookup_descriptor(onion_address_from_public_key(unknown))

    def test_retire_service_makes_it_unreachable(self):
        network = make_network()
        host = network.host_service(KeyPair.from_seed(b"svc"), echo_handler)
        network.retire_service(host.onion_address)
        with pytest.raises(ServiceUnreachable):
            network.connect("client", host.onion_address)

    def test_stale_descriptor_not_served(self):
        network = make_network()
        host = network.host_service(KeyPair.from_seed(b"svc"), echo_handler)
        network.simulator.run_for(2 * 86400.0)
        with pytest.raises(ServiceUnreachable):
            network.lookup_descriptor(host.onion_address)
        # Republishing restores reachability.
        network.publish_descriptor(host)
        assert network.lookup_descriptor(host.onion_address) is not None

    def test_rotation_moves_service_to_new_address(self):
        network = make_network()
        host = network.host_service(KeyPair.from_seed(b"period-0"), echo_handler)
        old_address = host.onion_address
        new_address = network.rotate_service_key(host, KeyPair.from_seed(b"period-1"))
        assert new_address != old_address
        assert network.send_to("client", new_address, b"ping") == b"echo:ping"
        with pytest.raises(ServiceUnreachable):
            network.connect("client", old_address)

    def test_censoring_hsdirs_deny_lookup(self):
        network = make_network()
        host = network.host_service(KeyPair.from_seed(b"svc"), echo_handler)
        for fingerprint in network.hsdirs_storing(host.onion_address):
            network.set_censoring(fingerprint)
        with pytest.raises(ServiceUnreachable):
            network.lookup_descriptor(host.onion_address)

    def test_connection_records_cells(self):
        network = make_network()
        host = network.host_service(KeyPair.from_seed(b"svc"), echo_handler)
        connection = network.connect("client", host.onion_address)
        network.send(connection, b"x" * 2000)
        assert connection.payloads_exchanged == 1
        assert connection.client_circuit.cells_sent >= 4
        connection.close(network.simulator.now)
        with pytest.raises(ServiceUnreachable):
            network.send(connection, b"more")

    def test_counters_track_activity(self):
        network = make_network()
        host = network.host_service(KeyPair.from_seed(b"svc"), echo_handler)
        network.send_to("client", host.onion_address, b"hello")
        counters = network.simulator.metrics.counters
        assert counters.get("tor.services_hosted") == 1
        assert counters.get("tor.connects_ok") == 1
        assert counters.get("tor.cells_relayed") >= 1

    def test_mutual_anonymity_of_connection_object(self):
        """The connection exposes onion addresses only, never registry handles."""
        network = make_network()
        host = network.host_service(KeyPair.from_seed(b"svc"), echo_handler)
        connection = network.connect("client-label", host.onion_address)
        assert connection.service_address == host.onion_address
        assert not hasattr(connection, "service_host")
        assert connection.client_label == "client-label"
