"""Baseline constructions the paper compares OnionBots against.

* :mod:`~repro.baselines.normal_graph` -- the "normal graph" of Figures 5/6:
  the same starting topology with no self-repair mechanism.
* :mod:`~repro.baselines.legacy_botnets` -- the botnet families of Table I
  (Miner, Storm, ZeroAccess v1, Zeus) with their crypto/signing/replay
  properties and representative message framings, used for the
  indistinguishability comparison.
* :mod:`~repro.baselines.centralized` -- a classic centralized C&C botnet,
  the single-point-of-failure architecture OnionBots abandon.
* :mod:`~repro.baselines.kademlia` -- a Kademlia-style structured overlay
  (the Overbot-like baseline from related work) to contrast structured
  routing state with the DDSR unstructured design.
"""

from repro.baselines.normal_graph import NormalOverlay
from repro.baselines.legacy_botnets import (
    LEGACY_BOTNETS,
    ONIONBOT_PROFILE,
    BotnetProfile,
    all_profiles,
    sample_message,
)
from repro.baselines.centralized import CentralizedBotnet, CentralizedTakedownResult
from repro.baselines.kademlia import KademliaNode, KademliaOverlay

__all__ = [
    "NormalOverlay",
    "BotnetProfile",
    "LEGACY_BOTNETS",
    "ONIONBOT_PROFILE",
    "all_profiles",
    "sample_message",
    "CentralizedBotnet",
    "CentralizedTakedownResult",
    "KademliaNode",
    "KademliaOverlay",
]
