"""Graph metrics reported in the paper's evaluation.

Figure 4 plots average closeness and degree centrality; Figure 5 adds connected
components and diameter; Figure 6 derives a partition threshold.  All of these
are implemented here with plain BFS over the adjacency sets so they work
directly on :class:`~repro.graphs.adjacency.UndirectedGraph` (the structure the
live overlay mutates), and are cross-checked against ``networkx`` in the
test-suite.

Exact closeness centrality and diameter require all-pairs BFS, which is
O(n * (n + m)) and becomes expensive at the paper's 5000--15000-node scale in
pure Python.  Each function therefore accepts a ``sample_size``/``rng`` pair:
when given, a deterministic sample of source nodes is used, producing an
unbiased estimate of the average that preserves the *shape* of every curve.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set

from repro.graphs.adjacency import GraphError, UndirectedGraph

NodeId = Hashable


def shortest_path_lengths_from(graph: UndirectedGraph, source: NodeId) -> Dict[NodeId, int]:
    """BFS distances from ``source`` to every reachable node (including itself)."""
    if source not in graph:
        raise GraphError(f"source {source!r} not in graph")
    distances: Dict[NodeId, int] = {source: 0}
    frontier: deque[NodeId] = deque([source])
    while frontier:
        node = frontier.popleft()
        node_distance = distances[node]
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = node_distance + 1
                frontier.append(neighbor)
    return distances


def closeness_centrality(graph: UndirectedGraph, node: NodeId) -> float:
    """Normalised closeness centrality of ``node``.

    Follows the paper's definition ``C(u) = (n - 1) / sum_v d(u, v)`` with the
    standard Wasserman--Faust correction for disconnected graphs (scale by the
    fraction of nodes actually reachable), matching ``networkx``'s behaviour so
    that the two implementations can be compared in the tests.
    """
    n = graph.number_of_nodes()
    if n <= 1:
        return 0.0
    distances = shortest_path_lengths_from(graph, node)
    reachable = len(distances) - 1
    if reachable == 0:
        return 0.0
    total = sum(distances.values())
    closeness = reachable / total
    # Scale by reachable fraction so values remain comparable across components.
    return closeness * (reachable / (n - 1))


def average_closeness_centrality(
    graph: UndirectedGraph,
    *,
    sample_size: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> float:
    """Mean closeness centrality over all nodes (or a deterministic sample)."""
    nodes = _select_nodes(graph, sample_size, rng)
    if not nodes:
        return 0.0
    return sum(closeness_centrality(graph, node) for node in nodes) / len(nodes)


def degree_centrality(graph: UndirectedGraph, node: NodeId) -> float:
    """Degree of ``node`` normalised by ``n - 1`` (fraction of nodes adjacent)."""
    n = graph.number_of_nodes()
    if n <= 1:
        return 0.0
    return graph.degree(node) / (n - 1)


def average_degree_centrality(graph: UndirectedGraph) -> float:
    """Mean degree centrality over every node."""
    n = graph.number_of_nodes()
    if n <= 1:
        return 0.0
    total_degree = sum(graph.degrees().values())
    return (total_degree / n) / (n - 1)


def connected_components(graph: UndirectedGraph) -> List[Set[NodeId]]:
    """All connected components as sets of nodes (largest first)."""
    seen: Set[NodeId] = set()
    components: List[Set[NodeId]] = []
    for node in graph.nodes():
        if node in seen:
            continue
        component = set(shortest_path_lengths_from(graph, node))
        seen.update(component)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def number_connected_components(graph: UndirectedGraph) -> int:
    """Count of connected components (0 for an empty graph)."""
    return len(connected_components(graph))


def largest_component_fraction(graph: UndirectedGraph) -> float:
    """Fraction of surviving nodes inside the largest connected component."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    components = connected_components(graph)
    return len(components[0]) / n


def eccentricity(graph: UndirectedGraph, node: NodeId) -> int:
    """Largest BFS distance from ``node`` within its component."""
    distances = shortest_path_lengths_from(graph, node)
    return max(distances.values()) if distances else 0


def diameter(
    graph: UndirectedGraph,
    *,
    sample_size: Optional[int] = None,
    rng: Optional[random.Random] = None,
    largest_component_only: bool = True,
    connected: Optional[bool] = None,
) -> float:
    """Diameter (longest shortest path) of the graph.

    The paper treats a partitioned graph as having infinite diameter; by
    default we therefore restrict to the largest connected component, matching
    how Figure 5e/5f keep reporting finite values for the DDSR curve while the
    "normal" curve is cut off when it partitions.  Set
    ``largest_component_only=False`` to get ``float('inf')`` on partitioned
    graphs instead.

    With ``sample_size`` the result is a lower-bound estimate obtained from a
    deterministic sample of BFS sources (sufficient to reproduce the trends).

    ``connected=True`` asserts the caller already knows the graph has a
    single component (the DDSR sweeps compute the component count right
    before the diameter at every checkpoint), skipping the redundant
    component scan without changing the result.
    """
    if graph.number_of_nodes() == 0:
        return 0.0
    if connected:
        working = graph
    else:
        components = connected_components(graph)
        if len(components) > 1 and not largest_component_only:
            return float("inf")
        working = graph if len(components) == 1 else graph.subgraph(components[0])
    nodes = _select_nodes(working, sample_size, rng)
    best = 0
    for node in nodes:
        best = max(best, eccentricity(working, node))
    return float(best)


def average_shortest_path_length(
    graph: UndirectedGraph,
    *,
    sample_size: Optional[int] = None,
    rng: Optional[random.Random] = None,
    connected: Optional[bool] = None,
) -> float:
    """Mean pairwise distance inside the largest component (sampled sources).

    ``connected=True`` skips the component scan when the caller has already
    established connectivity (see :func:`diameter`).
    """
    if graph.number_of_nodes() <= 1:
        return 0.0
    if connected:
        working = graph
    else:
        components = connected_components(graph)
        working = graph if len(components) == 1 else graph.subgraph(components[0])
    nodes = _select_nodes(working, sample_size, rng)
    total = 0
    pairs = 0
    for node in nodes:
        distances = shortest_path_lengths_from(working, node)
        total += sum(distances.values())
        pairs += len(distances) - 1
    if pairs == 0:
        return 0.0
    return total / pairs


def full_path_metrics(graph: UndirectedGraph) -> Dict:
    """Exact diameter, ASPL and closeness of the largest component.

    Returns ``{components, largest_fraction, diameter, avg_path_length,
    avg_closeness}`` with *every node of the largest component* as a BFS
    source -- no sampling.  This is the readable reference the fast
    backend's one-campaign :func:`repro.graphs.fast.full_path_metrics` must
    reproduce bit for bit; at paper scale and beyond use that one (this is
    O(n * (n + m))).
    """
    n = graph.number_of_nodes()
    if n == 0:
        return {
            "components": 0,
            "largest_fraction": 0.0,
            "diameter": 0.0,
            "avg_path_length": 0.0,
            "avg_closeness": 0.0,
        }
    components = connected_components(graph)
    working = graph if len(components) == 1 else graph.subgraph(components[0])
    return {
        "components": len(components),
        "largest_fraction": len(components[0]) / n,
        "diameter": diameter(working, connected=True),
        "avg_path_length": average_shortest_path_length(working, connected=True),
        "avg_closeness": average_closeness_centrality(working),
    }


def path_length_accumulators(graph: UndirectedGraph) -> Dict[NodeId, tuple]:
    """``{node: (eccentricity, distance_sum, reachable_count)}`` -- all exact.

    One BFS per node; per-node ASPL is ``distance_sum / reachable_count``.
    The oracle for :func:`repro.graphs.fast.path_length_accumulators`, which
    assembles the same integers from transposed per-node wave accumulation.
    """
    result: Dict[NodeId, tuple] = {}
    for node in graph.nodes():
        distances = shortest_path_lengths_from(graph, node)
        result[node] = (
            max(distances.values()) if distances else 0,
            sum(distances.values()),
            len(distances) - 1,
        )
    return result


def degree_histogram(graph: UndirectedGraph) -> Dict[int, int]:
    """Mapping of degree value -> number of nodes with that degree."""
    histogram: Dict[int, int] = {}
    for degree_value in graph.degrees().values():
        histogram[degree_value] = histogram.get(degree_value, 0) + 1
    return histogram


def _select_nodes(
    graph: UndirectedGraph,
    sample_size: Optional[int],
    rng: Optional[random.Random],
) -> Sequence[NodeId]:
    """All nodes, or a deterministic sample of them when requested."""
    nodes = graph.nodes()
    if sample_size is None or sample_size >= len(nodes):
        return nodes
    if sample_size <= 0:
        return []
    chooser = rng if rng is not None else random.Random(0)
    return chooser.sample(nodes, sample_size)
