"""Tests for the benign command workload generator."""

from repro.workloads.commands import BENIGN_COMMANDS, CommandWorkload


class TestCommandWorkload:
    def test_schedule_size(self):
        workload = CommandWorkload(commands_per_day=4.0, duration_days=3.0, seed=1)
        assert len(workload) == 12

    def test_times_sorted_and_within_horizon(self):
        workload = CommandWorkload(commands_per_day=10.0, duration_days=2.0, seed=2)
        times = [time for time, _, _ in workload]
        assert times == sorted(times)
        assert all(0.0 <= time <= 2.0 * 86400.0 for time in times)

    def test_only_benign_verbs_are_used(self):
        workload = CommandWorkload(commands_per_day=20.0, duration_days=1.0, seed=3)
        assert all(verb in BENIGN_COMMANDS for _, verb, _ in workload)

    def test_sequence_argument_is_monotone(self):
        workload = CommandWorkload(commands_per_day=5.0, duration_days=1.0, seed=4)
        sequences = [int(args["sequence"]) for _, _, args in workload]
        assert sequences == list(range(len(sequences)))

    def test_reproducible_for_seed(self):
        a = list(CommandWorkload(seed=5))
        b = list(CommandWorkload(seed=5))
        assert a == b

    def test_zero_rate_produces_empty_schedule(self):
        assert len(CommandWorkload(commands_per_day=0.0)) == 0
