"""In-process telemetry collector: counters, gauges and wall-clock spans.

Design constraints, in priority order:

1. **Zero cost when off.**  The module-level active collector defaults to
   :data:`NULL`, a no-op singleton whose methods perform no allocation at
   all (``span()`` hands back one pre-built reusable context manager).
   Instrumented hot paths either call through unconditionally (cold-ish
   call sites like ``csr_of``) or hoist ``tel = current()`` /
   ``if tel.enabled:`` out of their inner loops (the wave engine), so a
   disabled run is indistinguishable from an uninstrumented one.
2. **Observational only.**  Nothing here reads or seeds any rng, and no
   instrumented call site may branch on collected values; enabling
   telemetry must leave every scientific result bit-identical
   (``tests/obs/test_no_perturbation.py``).
3. **Thread-safe and mergeable.**  One :class:`Collector` serves a whole
   process; worker processes run their own collector per task and ship
   :meth:`Collector.snapshot` dictionaries back for
   :meth:`Collector.merge_snapshot` -- counters add, span stats combine
   exactly, gauges last-write-win.

Typical use::

    from repro.obs import telemetry

    collector = telemetry.enable(label="resilience-at-scale")
    ...                                   # instrumented code runs
    telemetry.disable()
    report = render_report(collector, meta={...})

Instrumentation sites use :func:`current`::

    tel = telemetry.current()
    if tel.enabled:                       # hot loops hoist this check
        tel.count("wave.dispatch.dense")
    with tel.span("runner.unit"):         # fine unconditionally: the null
        ...                               # span is a reusable no-op
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional

#: Environment variable the runner CLI reads: when set (non-empty), telemetry
#: is enabled for the run and the JSON report is written to this path.  An
#: *environment* knob rather than a scenario parameter on purpose --
#: parameters feed unit-seed derivation and cache identity
#: (:meth:`repro.runner.spec.WorkUnit.key_material`), and telemetry must
#: change neither.
ENV_VAR = "REPRO_TELEMETRY"


def env_report_path() -> Optional[str]:
    """The report path requested via :data:`ENV_VAR`, or ``None`` when unset."""
    raw = os.environ.get(ENV_VAR, "").strip()
    return raw or None


class _NullSpan:
    """Reusable no-op context manager handed out by the null collector."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullCollector:
    """The disabled-path collector: every method is an allocation-free no-op.

    A single module-level instance (:data:`NULL`) is the active collector
    whenever telemetry is off, so instrumented code never needs a ``None``
    check -- and the ``enabled`` class attribute lets hot loops skip even
    the no-op calls.
    """

    __slots__ = ()

    enabled = False

    def count(self, name: str, amount: int = 1) -> None:
        return None

    def gauge(self, name: str, value: Any) -> None:
        return None

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, name: str, seconds: float) -> None:
        return None

    def section(self, name: str, payload: Any) -> None:
        return None

    def merge_snapshot(self, snapshot: Mapping[str, Any], prefix: str = "") -> None:
        return None

    def snapshot(self) -> Dict[str, Any]:
        return {"label": "", "counters": {}, "gauges": {}, "spans": {}, "sections": {}}


NULL = NullCollector()


class _Span:
    """Context manager recording one wall-clock interval into a collector."""

    __slots__ = ("_collector", "_name", "_started")

    def __init__(self, collector: "Collector", name: str) -> None:
        self._collector = collector
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._collector.record_span(self._name, time.perf_counter() - self._started)
        return False


class Collector:
    """Thread-safe accumulator of counters, gauges, spans and sections.

    * **counters** -- integer totals (``count``), e.g. per-level wave
      dispatch choices;
    * **gauges**   -- last-write-wins key/value observations (``gauge``),
      e.g. the active popcount backend or the ghost pressure after a CSR
      sync;
    * **spans**    -- wall-clock intervals aggregated per name into
      ``(count, total_s, max_s)`` (``span`` / ``record_span``), e.g.
      per-unit runner wall time;
    * **sections** -- arbitrary JSON-friendly payloads attached wholesale
      (``section``), e.g. a sim-layer :class:`~repro.sim.metrics.CounterSet`
      snapshot.
    """

    enabled = True

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, Any] = {}
        #: name -> [count, total_seconds, max_seconds]
        self._spans: Dict[str, List[float]] = {}
        self._sections: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter called ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: Any) -> None:
        """Record the latest value of ``name`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def span(self, name: str) -> _Span:
        """A context manager timing one interval under ``name``."""
        return _Span(self, name)

    def record_span(self, name: str, seconds: float) -> None:
        """Fold one measured interval into the span stats for ``name``."""
        with self._lock:
            entry = self._spans.get(name)
            if entry is None:
                self._spans[name] = [1, seconds, seconds]
            else:
                entry[0] += 1
                entry[1] += seconds
                if seconds > entry[2]:
                    entry[2] = seconds

    def section(self, name: str, payload: Any) -> None:
        """Attach a JSON-friendly payload wholesale under ``name``."""
        with self._lock:
            self._sections[name] = payload

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A JSON-friendly copy of everything collected so far.

        The shape is what :meth:`merge_snapshot` consumes and what
        :func:`repro.obs.report.render_report` renders -- worker processes
        return these through the process pool (plain dicts of
        str/int/float, so they pickle cheaply).
        """
        with self._lock:
            return {
                "label": self.label,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "spans": {
                    name: {"count": int(entry[0]), "total_s": entry[1], "max_s": entry[2]}
                    for name, entry in self._spans.items()
                },
                "sections": {name: payload for name, payload in self._sections.items()},
            }

    def merge_snapshot(self, snapshot: Mapping[str, Any], prefix: str = "") -> None:
        """Fold another collector's :meth:`snapshot` into this one.

        Counters add, span stats combine exactly (count/total add, max
        maxes), gauges and sections last-write-win.  ``prefix`` is
        prepended to every merged name, so per-worker data can be kept
        apart when wanted (the runner merges unprefixed: one vocabulary).
        """
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                key = prefix + name
                self._counters[key] = self._counters.get(key, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                self._gauges[prefix + name] = value
            for name, stats in snapshot.get("spans", {}).items():
                key = prefix + name
                entry = self._spans.get(key)
                if entry is None:
                    self._spans[key] = [
                        int(stats["count"]),
                        float(stats["total_s"]),
                        float(stats["max_s"]),
                    ]
                else:
                    entry[0] += int(stats["count"])
                    entry[1] += float(stats["total_s"])
                    if stats["max_s"] > entry[2]:
                        entry[2] = float(stats["max_s"])
            for name, payload in snapshot.get("sections", {}).items():
                self._sections[prefix + name] = payload

    def counter(self, name: str) -> int:
        """Current value of one counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)


# ----------------------------------------------------------------------
# Module-level active collector
# ----------------------------------------------------------------------
_active: Any = NULL


def current():
    """The active collector: a :class:`Collector`, or :data:`NULL` when off."""
    return _active


def enabled() -> bool:
    """Whether a live collector is currently active."""
    return _active.enabled


def enable(label: str = "") -> Collector:
    """Install (and return) a fresh active collector, replacing any other."""
    global _active
    _active = Collector(label)
    return _active


def disable() -> Optional[Collector]:
    """Deactivate telemetry; returns the collector that was active (if any)."""
    global _active
    previous = _active
    _active = NULL
    return previous if previous.enabled else None


@contextmanager
def collecting(label: str = "") -> Iterator[Collector]:
    """Scope a fresh active collector, restoring the previous one on exit."""
    global _active
    previous = _active
    collector = Collector(label)
    _active = collector
    try:
        yield collector
    finally:
        _active = previous
