"""Tests for simulated keypairs."""

import pytest

from repro.crypto.keys import KeyPair, PublicKey, fingerprint, key_id, shared_identity


class TestKeyPair:
    def test_from_seed_is_deterministic(self):
        assert KeyPair.from_seed(b"seed") == KeyPair.from_seed(b"seed")

    def test_different_seeds_differ(self):
        assert KeyPair.from_seed(b"a") != KeyPair.from_seed(b"b")

    def test_string_seed_equivalent_to_bytes(self):
        assert KeyPair.from_seed("seed") == KeyPair.from_seed(b"seed")

    def test_public_key_material_size(self):
        keypair = KeyPair.from_seed(b"x")
        assert len(keypair.public.material) == 32
        assert len(keypair.private) == 32

    def test_generate_requires_entropy(self):
        with pytest.raises(ValueError):
            KeyPair.generate(b"")

    def test_public_key_validates_length(self):
        with pytest.raises(ValueError):
            PublicKey(b"short")

    def test_private_not_in_repr(self):
        keypair = KeyPair.from_seed(b"secret-seed")
        assert keypair.private.hex() not in repr(keypair)


class TestFingerprints:
    def test_fingerprint_is_20_bytes(self):
        keypair = KeyPair.from_seed(b"x")
        assert len(keypair.public_fingerprint()) == 20

    def test_fingerprint_truncation(self):
        keypair = KeyPair.from_seed(b"x")
        assert keypair.public_fingerprint(10) == keypair.public_fingerprint()[:10]

    def test_fingerprint_helper_accepts_many_types(self):
        keypair = KeyPair.from_seed(b"x")
        assert fingerprint(keypair) == fingerprint(keypair.public)
        assert fingerprint(keypair.public.material) == fingerprint(keypair.public)

    def test_fingerprint_helper_rejects_other_types(self):
        with pytest.raises(TypeError):
            fingerprint(12345)  # type: ignore[arg-type]

    def test_key_id_is_short_hex(self):
        keypair = KeyPair.from_seed(b"x")
        assert len(key_id(keypair.public)) == 16
        assert set(key_id(keypair.public)) <= set("0123456789abcdef")


class TestSharedIdentity:
    def test_deterministic(self):
        a = KeyPair.from_seed(b"a")
        b = KeyPair.from_seed(b"b")
        assert shared_identity(a.private, b.public) == shared_identity(a.private, b.public)

    def test_depends_on_both_keys(self):
        a = KeyPair.from_seed(b"a")
        b = KeyPair.from_seed(b"b")
        c = KeyPair.from_seed(b"c")
        assert shared_identity(a.private, b.public) != shared_identity(a.private, c.public)
        assert shared_identity(a.private, b.public) != shared_identity(c.private, b.public)

    def test_requires_public_key_type(self):
        a = KeyPair.from_seed(b"a")
        with pytest.raises(TypeError):
            shared_identity(a.private, b"not-a-key")  # type: ignore[arg-type]
