"""The simulated Tor network.

:class:`TorNetwork` ties the substrate together: it owns the directory
authority, the relay population, per-HSDir descriptor storage, hidden-service
hosting and the client-side connection flow of Figure 1.  It is the single
object the OnionBot core talks to when it wants to "do Tor things" -- publish
a service, rotate an address, look up a peer, send a message.

The model supports the two Tor-level phenomena the paper's mitigation section
cares about:

* **HSDir interception / censorship** (section VI-A): adversarial relays can be
  injected with crafted fingerprints; once they gain the HSDir flag they become
  responsible for a target's descriptor and can refuse to serve it, making the
  service unreachable for new clients.
* **Descriptor ageing**: descriptors expire after 24 simulated hours unless
  republished, so a bot that stops maintaining its service naturally drops off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.crypto.keys import KeyPair
from repro.sim.engine import Simulator
from repro.tor.circuit import Circuit, CircuitPurpose, build_path
from repro.tor.consensus import CONSENSUS_INTERVAL, ConsensusDocument, DirectoryAuthority
from repro.tor.descriptor import HiddenServiceDescriptor
from repro.tor.hidden_service import (
    HiddenServiceHost,
    RendezvousConnection,
    ServiceHandler,
    ServiceUnreachable,
)
from repro.tor.hsdir import responsible_hsdirs
from repro.tor.onion_address import OnionAddress
from repro.tor.relay import HSDIR_UPTIME_HOURS, Relay, RelayFlag
from repro.tor.cells import cells_required


@dataclass
class TorNetworkConfig:
    """Tunable parameters of the simulated Tor network."""

    #: Relays created by :meth:`TorNetwork.bootstrap`.
    num_relays: int = 60
    #: Number of introduction points each hidden service selects.
    introduction_points: int = 3
    #: Hops in a client or service circuit.
    circuit_length: int = 3
    #: Whether to keep publishing an hourly consensus via the simulator.
    auto_consensus: bool = True
    #: Descriptor lifetime in seconds before a republish is required.
    descriptor_lifetime: float = 86400.0


class TorNetwork:
    """In-process model of Tor sufficient for the OnionBots experiments."""

    def __init__(self, simulator: Simulator, config: Optional[TorNetworkConfig] = None) -> None:
        self.simulator = simulator
        self.config = config or TorNetworkConfig()
        self.authority = DirectoryAuthority()
        self._relay_counter = 0
        #: Descriptor storage per HSDir fingerprint: identifier -> descriptor.
        self._hsdir_storage: Dict[bytes, Dict[bytes, HiddenServiceDescriptor]] = {}
        #: Fingerprints of HSDirs that silently drop descriptors they receive.
        self._censoring_hsdirs: set[bytes] = set()
        #: Hosted services by onion address string.
        self._services: Dict[str, HiddenServiceHost] = {}
        self._consensus_process = None

    # ------------------------------------------------------------------
    # Relay population
    # ------------------------------------------------------------------
    def add_relay(
        self,
        *,
        nickname: Optional[str] = None,
        adversarial: bool = False,
        joined_at: Optional[float] = None,
        fingerprint_seed: Optional[bytes] = None,
        bandwidth: float = 1.0,
    ) -> Relay:
        """Register a new relay with the directory authority.

        ``fingerprint_seed`` lets callers (the HSDir-interception defense)
        craft relays whose fingerprint lands at a chosen ring position.
        """
        self._relay_counter += 1
        name = nickname or f"relay{self._relay_counter:05d}"
        seed = fingerprint_seed or self.simulator.random.random_bytes("tor.relay-keys", 32)
        relay = Relay(
            nickname=name,
            keypair=KeyPair.from_seed(seed),
            joined_at=self.simulator.now if joined_at is None else joined_at,
            bandwidth=bandwidth,
            is_adversarial=adversarial,
        )
        self.authority.register(relay)
        self.simulator.log("tor", "relay joined", nickname=name, adversarial=adversarial)
        return relay

    def bootstrap(self, num_relays: Optional[int] = None) -> ConsensusDocument:
        """Create the initial relay population and publish the first consensus.

        Relays are backdated so they already satisfy the 25-hour HSDir uptime
        requirement -- the experiments start from a steady-state Tor network,
        as the paper assumes.
        """
        count = num_relays if num_relays is not None else self.config.num_relays
        backdate = self.simulator.now - (HSDIR_UPTIME_HOURS + 1) * 3600.0
        for _ in range(count):
            self.add_relay(joined_at=backdate)
        consensus = self.publish_consensus()
        if self.config.auto_consensus and self._consensus_process is None:
            self._consensus_process = self.simulator.every(
                CONSENSUS_INTERVAL,
                lambda: self.publish_consensus(),
                name="tor.consensus",
            )
        return consensus

    def publish_consensus(self) -> ConsensusDocument:
        """Publish a consensus for the current relay population."""
        consensus = self.authority.publish_consensus(self.simulator.now)
        self.simulator.metrics.counters.increment("tor.consensus_published")
        return consensus

    @property
    def consensus(self) -> ConsensusDocument:
        """The latest consensus (publishing one if none exists yet)."""
        latest = self.authority.latest_consensus
        if latest is None:
            latest = self.publish_consensus()
        return latest

    def take_relay_offline(self, fingerprint: bytes) -> None:
        """Remove a relay from service (and from future consensuses)."""
        relay = self.authority.relay(fingerprint)
        if relay is None:
            raise ValueError(f"no relay with fingerprint {fingerprint.hex()}")
        relay.go_offline(self.simulator.now)
        self.simulator.log("tor", "relay offline", nickname=relay.nickname)

    def set_censoring(self, fingerprint: bytes, censoring: bool = True) -> None:
        """Mark an HSDir as refusing to serve (or store) descriptors."""
        if censoring:
            self._censoring_hsdirs.add(fingerprint)
        else:
            self._censoring_hsdirs.discard(fingerprint)

    # ------------------------------------------------------------------
    # Hidden-service hosting
    # ------------------------------------------------------------------
    def host_service(
        self,
        keypair: KeyPair,
        handler: ServiceHandler,
        *,
        descriptor_cookie: bytes = b"",
    ) -> HiddenServiceHost:
        """Host a hidden service and publish its first descriptor."""
        host = HiddenServiceHost(
            keypair=keypair,
            handler=handler,
            descriptor_cookie=descriptor_cookie,
            created_at=self.simulator.now,
        )
        self._select_introduction_points(host)
        self._services[str(host.onion_address)] = host
        self.publish_descriptor(host)
        self.simulator.metrics.counters.increment("tor.services_hosted")
        return host

    def _select_introduction_points(self, host: HiddenServiceHost) -> None:
        candidates = [entry for entry in self.consensus.entries if RelayFlag.STABLE in entry.flags]
        if not candidates:
            candidates = list(self.consensus.entries)
        if not candidates:
            raise ServiceUnreachable("no relays available to act as introduction points")
        count = min(self.config.introduction_points, len(candidates))
        chooser = self.simulator.random.stream("tor.intro-points")
        host.introduction_points = [entry.fingerprint for entry in chooser.sample(candidates, count)]

    def publish_descriptor(self, host: HiddenServiceHost) -> HiddenServiceDescriptor:
        """(Re)publish the host's descriptor to its responsible HSDirs."""
        descriptor = host.build_descriptor(self.simulator.now)
        responsible = responsible_hsdirs(
            self.consensus,
            descriptor.identifier,
            self.simulator.now,
            descriptor.descriptor_cookie,
        )
        stored = 0
        for entry in responsible:
            if entry.fingerprint in self._censoring_hsdirs:
                continue
            storage = self._hsdir_storage.setdefault(entry.fingerprint, {})
            storage[descriptor.identifier] = descriptor
            stored += 1
        host.descriptors_published += 1
        self.simulator.metrics.counters.increment("tor.descriptors_published")
        self.simulator.log(
            "tor",
            "descriptor published",
            onion=str(host.onion_address),
            hsdirs=stored,
        )
        return descriptor

    def retire_service(self, onion_address: OnionAddress | str) -> None:
        """Take a hidden service offline and purge its descriptors."""
        key = str(onion_address)
        host = self._services.pop(key, None)
        if host is None:
            return
        host.go_offline()
        identifier = host.onion_address.identifier()
        for storage in self._hsdir_storage.values():
            storage.pop(identifier, None)
        self.simulator.log("tor", "service retired", onion=key)

    def rotate_service_key(self, host: HiddenServiceHost, new_keypair: KeyPair) -> OnionAddress:
        """Re-home a hidden service under a new keypair (address rotation).

        The old descriptor is purged, the host is re-registered under the new
        onion address and a fresh descriptor is published, mirroring how an
        OnionBot abandons its previous ``.onion`` each period.
        """
        old_address = str(host.onion_address)
        old_identifier = host.onion_address.identifier()
        self._services.pop(old_address, None)
        for storage in self._hsdir_storage.values():
            storage.pop(old_identifier, None)
        new_address = host.rekey(new_keypair)
        self._services[str(new_address)] = host
        self.publish_descriptor(host)
        self.simulator.metrics.counters.increment("tor.addresses_rotated")
        self.simulator.log("tor", "address rotated", old=old_address, new=str(new_address))
        return new_address

    def service(self, onion_address: OnionAddress | str) -> Optional[HiddenServiceHost]:
        """The host registered at ``onion_address``, if any."""
        return self._services.get(str(onion_address))

    def hosted_addresses(self) -> List[str]:
        """Every onion address currently hosted."""
        return list(self._services)

    # ------------------------------------------------------------------
    # Client-side connection flow (Figure 1)
    # ------------------------------------------------------------------
    def lookup_descriptor(self, onion_address: OnionAddress | str) -> HiddenServiceDescriptor:
        """Fetch a service descriptor from its responsible HSDirs.

        Raises :class:`ServiceUnreachable` when no responsible, non-censoring
        HSDir holds a fresh descriptor -- exactly the failure an HSDir
        interception attack produces.
        """
        address = OnionAddress(str(onion_address)) if not isinstance(onion_address, OnionAddress) else onion_address
        identifier = address.identifier()
        responsible = responsible_hsdirs(self.consensus, identifier, self.simulator.now)
        for entry in responsible:
            if entry.fingerprint in self._censoring_hsdirs:
                continue
            descriptor = self._hsdir_storage.get(entry.fingerprint, {}).get(identifier)
            if descriptor is None:
                continue
            if not descriptor.is_fresh(self.simulator.now, self.config.descriptor_lifetime):
                continue
            self.simulator.metrics.counters.increment("tor.descriptor_lookups_ok")
            return descriptor
        self.simulator.metrics.counters.increment("tor.descriptor_lookups_failed")
        raise ServiceUnreachable(f"no fresh descriptor found for {address}")

    def _build_circuit(self, purpose: CircuitPurpose) -> Circuit:
        candidates = self.consensus.entries
        if len(candidates) < self.config.circuit_length:
            raise ServiceUnreachable("not enough relays to build a circuit")
        chooser = self.simulator.random.stream("tor.circuits")
        path = build_path(candidates, self.config.circuit_length, chooser)
        return Circuit(path=path, purpose=purpose, built_at=self.simulator.now)

    def connect(self, client_label: str, onion_address: OnionAddress | str) -> RendezvousConnection:
        """Establish a rendezvous connection from a client to a hidden service.

        Follows the Figure 1 sequence: descriptor lookup (step 3), rendezvous
        circuit (step 4), introduction (steps 5-6), service-side circuit to the
        rendezvous point (step 7).  The returned connection reveals neither
        party's identity to the other.
        """
        descriptor = self.lookup_descriptor(onion_address)
        host = self._services.get(str(descriptor.onion_address))
        if host is None or not host.is_online:
            self.simulator.metrics.counters.increment("tor.connects_failed")
            raise ServiceUnreachable(f"service {onion_address} is not online")
        if not descriptor.verify_signature():
            self.simulator.metrics.counters.increment("tor.connects_failed")
            raise ServiceUnreachable(f"descriptor signature for {onion_address} is invalid")
        client_circuit = self._build_circuit(CircuitPurpose.RENDEZVOUS)
        service_circuit = self._build_circuit(CircuitPurpose.RENDEZVOUS)
        connection = RendezvousConnection(
            client_label=client_label,
            service_address=descriptor.onion_address,
            client_circuit=client_circuit,
            service_circuit=service_circuit,
            established_at=self.simulator.now,
        )
        self.simulator.metrics.counters.increment("tor.connects_ok")
        return connection

    def send(self, connection: RendezvousConnection, payload: bytes) -> Optional[bytes]:
        """Send ``payload`` over an open connection and return the reply.

        The payload is chunked into fixed-size cells for accounting; delivery
        is synchronous (the latency estimate is available from the connection
        for callers that want to model it explicitly).
        """
        if not connection.is_open:
            raise ServiceUnreachable("connection is closed")
        host = self._services.get(str(connection.service_address))
        if host is None or not host.is_online:
            raise ServiceUnreachable(f"service {connection.service_address} went offline")
        cells = cells_required(len(payload))
        connection.record_exchange(cells)
        self.simulator.metrics.counters.increment("tor.cells_relayed", cells)
        return host.deliver(payload, connection)

    def send_to(self, client_label: str, onion_address: OnionAddress | str, payload: bytes) -> Optional[bytes]:
        """Convenience: connect, send one payload, close, return the reply."""
        connection = self.connect(client_label, onion_address)
        try:
            return self.send(connection, payload)
        finally:
            connection.close(self.simulator.now)

    # ------------------------------------------------------------------
    # Introspection used by experiments
    # ------------------------------------------------------------------
    def hsdirs_storing(self, onion_address: OnionAddress | str) -> List[bytes]:
        """Fingerprints of HSDirs currently holding a descriptor for the address."""
        address = OnionAddress(str(onion_address)) if not isinstance(onion_address, OnionAddress) else onion_address
        identifier = address.identifier()
        return [
            fingerprint
            for fingerprint, storage in self._hsdir_storage.items()
            if identifier in storage
        ]

    def adversarial_hsdir_fraction(self, onion_address: OnionAddress | str) -> float:
        """Fraction of the address's responsible HSDirs that are adversarial."""
        address = OnionAddress(str(onion_address)) if not isinstance(onion_address, OnionAddress) else onion_address
        responsible = responsible_hsdirs(self.consensus, address.identifier(), self.simulator.now)
        if not responsible:
            return 0.0
        adversarial = sum(1 for entry in responsible if entry.is_adversarial)
        return adversarial / len(responsible)
