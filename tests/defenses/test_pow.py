"""Tests for proof-of-work peering admission."""

import random

import pytest

from repro.adversary.soap import SoapAttack
from repro.core.ddsr import DDSROverlay
from repro.defenses.pow import PowAdmission, PowParameters


class TestPowParameters:
    def test_invalid_base_work(self):
        with pytest.raises(ValueError):
            PowParameters(base_work=0.0)

    def test_invalid_escalation(self):
        with pytest.raises(ValueError):
            PowParameters(escalation_factor=0.5)


class TestPowAdmission:
    def test_cost_escalates_per_target(self):
        admission = PowAdmission(PowParameters(base_work=1.0, escalation_factor=2.0))
        overlay = DDSROverlay.k_regular(20, 4, seed=1)
        target = overlay.nodes()[0]
        costs = []
        for index in range(4):
            decision = admission(target, f"clone-{index}", overlay)
            costs.append(decision.work_required)
        assert costs == [1.0, 2.0, 4.0, 8.0]

    def test_costs_are_per_target(self):
        admission = PowAdmission(PowParameters(base_work=1.0, escalation_factor=2.0))
        overlay = DDSROverlay.k_regular(20, 4, seed=1)
        a, b = overlay.nodes()[:2]
        admission(a, "c1", overlay)
        admission(a, "c2", overlay)
        fresh = admission(b, "c3", overlay)
        assert fresh.work_required == 1.0

    def test_requests_above_budget_rejected(self):
        admission = PowAdmission(
            PowParameters(base_work=1.0, escalation_factor=2.0, work_budget_per_clone=4.0)
        )
        overlay = DDSROverlay.k_regular(20, 4, seed=1)
        target = overlay.nodes()[0]
        decisions = [admission(target, f"c{i}", overlay) for i in range(6)]
        assert [d.accepted for d in decisions[:3]] == [True, True, True]
        assert not decisions[4].accepted
        assert admission.total_rejected >= 1

    def test_cost_capped_at_max_work(self):
        admission = PowAdmission(PowParameters(base_work=1.0, escalation_factor=10.0, max_work=50.0))
        overlay = DDSROverlay.k_regular(20, 4, seed=1)
        target = overlay.nodes()[0]
        for index in range(100):
            admission(target, f"c{index}", overlay)
        assert admission.current_cost(target) == 50.0

    def test_reset_window_clears_history(self):
        admission = PowAdmission(PowParameters(base_work=1.0, escalation_factor=2.0))
        overlay = DDSROverlay.k_regular(20, 4, seed=1)
        target = overlay.nodes()[0]
        admission(target, "c1", overlay)
        admission.reset_window()
        assert admission.current_cost(target) == 1.0

    def test_repair_cost_scales_with_edges(self):
        admission = PowAdmission(PowParameters(base_work=2.0))
        assert admission.repair_cost(10) == 20.0


class TestPowAgainstSoap:
    def test_pow_stalls_soap_containment(self):
        overlay = DDSROverlay.k_regular(80, 8, seed=3)
        admission = PowAdmission(
            PowParameters(base_work=1.0, escalation_factor=2.0, work_budget_per_clone=16.0)
        )
        attack = SoapAttack(rng=random.Random(1), admission=admission, max_clones_per_node=50)
        result = attack.run_campaign(overlay, [overlay.nodes()[0]])
        assert not result.neutralized
        assert result.containment_fraction < 0.5
        assert result.requests_rejected > 0

    def test_without_escalation_soap_still_wins_but_pays(self):
        overlay = DDSROverlay.k_regular(60, 6, seed=4)
        admission = PowAdmission(PowParameters(base_work=1.0, escalation_factor=1.0))
        attack = SoapAttack(rng=random.Random(2), admission=admission)
        result = attack.run_campaign(overlay, [overlay.nodes()[0]])
        assert result.neutralized
        assert result.work_spent >= result.clones_created
