"""Persistent worker pools with shared-memory CSR broadcast.

Checkpointed campaigns used to pay process-pool spin-up *and* full CSR
pickling at every checkpoint: ``execute()`` and
``sharded_full_path_metrics`` each built a throwaway
:class:`~concurrent.futures.ProcessPoolExecutor` per call.  This module
keeps one pool alive per runner invocation instead and separates
worker-resident state from per-task inputs:

* **Pool lifetime** -- :func:`get_pool` hands out one :class:`WorkerPool`
  per worker count; the underlying executor is created lazily on first use
  and survives across campaigns and checkpoints, so ``runner.pool_spinup``
  is recorded once per invocation, not once per campaign.  Pools are
  context managers and an ``atexit`` guard closes whatever is left, so
  shared-memory segments never outlive the parent even on a crashed run.
* **Shared-memory CSR publication** -- :meth:`WorkerPool.publish_csr`
  publishes a snapshot's ``indptr`` / ``indices`` / ``alive`` arrays via
  :mod:`multiprocessing.shared_memory` under a *generation* stamp.  Workers
  attach once, then every later generation ships only the index-space
  patch resolved from the graph's mutation delta log
  (:meth:`repro.graphs.adjacency.UndirectedGraph.delta_since` with a
  pool-private consumer mark, resolved by
  :func:`repro.graphs.fast.resolve_index_patch`); workers replay patches
  with the *same* array surgery the parent cache uses
  (:func:`repro.graphs.fast.apply_index_patch`), so the mirror's index
  space stays byte-identical to the parent's.  On log overflow, a
  compaction (epoch change) or a too-long patch chain the publication
  re-attaches with fresh segments.
* **Failure paths** -- a killed worker breaks the executor; the pool
  respawns it once (after a deterministic backoff) and retries only the
  tasks whose results have not been merged yet (exactly-once delivery:
  accumulator merges are not idempotent).  A *hung* worker is caught by
  the task watchdog: when ``REPRO_TASK_TIMEOUT`` is set and no task
  completes within that many seconds, the pool's workers are SIGKILLed
  (``runner.watchdog.kill``) and the break flows into the same
  respawn-and-retry machinery.  Worker-side *transient* failures (a
  shared-memory attach refused by the OS) are retried per task up to
  ``REPRO_TASK_RETRIES`` times (``runner.retry``).  Once the pool is
  declared unhealthy -- respawned more than :data:`MAX_RESPAWNS` times --
  the remaining tasks are **drained serially in-parent**
  (``runner.degraded_serial`` + a warning) instead of failing the
  campaign; every recovery path preserves unit seeds, cache keys and the
  in-order Welford drain, so a degraded campaign stays bit-identical to a
  clean one.  Set ``REPRO_DEGRADED_SERIAL=0`` to fail fast with
  :class:`PoolError` instead; a task raising a real exception still
  surfaces as :class:`PoolTaskError` carrying the failing shard's unit
  context.

Everything is observation-instrumented via :mod:`repro.obs.telemetry`:
``runner.pool_spinup`` span, ``runner.pool.generation`` gauge, publish
attach/patch/reattach and worker-side shm attach/patch/reattach counters,
a ``runner.pool.bytes_shipped`` counter for the broadcast volume, and the
failure-path counters above.  Deterministic chaos tests drive these paths
via :mod:`repro.runner.faults` (sites ``pool.task`` / ``pool.path_task`` /
``pool.shm_attach``).
"""

from __future__ import annotations

import _thread
import atexit
import logging
import os
import signal
import threading
import time
import uuid
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.telemetry import current as _telemetry

logger = logging.getLogger(__name__)

#: Name prefix of every shared-memory segment the pool creates.  Tests (and
#: humans) can audit ``/dev/shm`` for leaks by this prefix.
SHM_PREFIX = "repro-pool-"

#: Longest attach-plus-patches sync chain shipped per task before the
#: publication re-attaches: a fresh worker replays the whole chain, so an
#: unbounded chain would eventually cost more than re-shipping the arrays.
MAX_SYNC_CHAIN = 32

#: Live shared-memory publications kept per pool (LRU).  Checkpointed
#: campaigns publish one graph at a time; the cap bounds ``/dev/shm`` usage
#: when callers interleave several graphs.
MAX_PUBLICATIONS = 4

#: How many times one task batch survives a broken (killed-worker) executor
#: before the pool is declared unhealthy (degraded-serial drain or
#: :class:`PoolError`, per ``REPRO_DEGRADED_SERIAL``).
MAX_RESPAWNS = 1

#: Per-task deadline in seconds (float).  When set, the watchdog SIGKILLs
#: the pool's workers after that long without *any* task completing --
#: turning a hung worker into the (recoverable) killed-worker path.  Unset
#: = no deadline, matching the pre-watchdog behaviour.
TASK_TIMEOUT_ENV_VAR = "REPRO_TASK_TIMEOUT"

#: How many times one task survives a worker-side *transient* failure
#: (:class:`TransientTaskError`, e.g. a refused shm attach) before it is
#: abandoned as :class:`PoolTaskError`.  Default 1.
TASK_RETRIES_ENV_VAR = "REPRO_TASK_RETRIES"

#: Base of the deterministic respawn backoff: respawn ``k`` sleeps
#: ``base * 2**(k-1)`` seconds.  Default 0.05; 0 disables the sleep.
RETRY_BACKOFF_ENV_VAR = "REPRO_RETRY_BACKOFF"

#: ``0``/``false`` makes an unhealthy pool raise :class:`PoolError`
#: instead of draining the remaining shards serially in-parent.
DEGRADED_SERIAL_ENV_VAR = "REPRO_DEGRADED_SERIAL"


class PoolError(RuntimeError):
    """The pool itself failed (broken twice, unreplayable sync chain...)."""


class PoolTaskError(PoolError):
    """One task failed in a worker; the message carries its unit context."""


class ParentTimeoutError(PoolError):
    """In-parent work (serial units, degraded drain) blew the task deadline.

    The pool watchdog can SIGKILL a hung *worker*, but work running in the
    parent process -- the serial ``workers=1`` unit loop, in-parent
    checkpoint shards, and above all the degraded-serial drain -- has no
    worker to kill.  :func:`parent_deadline` monitors those stretches with
    a heartbeat thread and converts a stall past ``REPRO_TASK_TIMEOUT``
    into this error, so an in-parent hang terminates with a resumable
    journal instead of hanging forever.
    """


class TransientTaskError(RuntimeError):
    """A worker-side failure worth retrying (the environment refused, the
    task itself did not fail).  Crosses the process boundary by pickling;
    the parent resubmits the task up to the ``REPRO_TASK_RETRIES`` budget.
    """


def _positive_float_env(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    from repro.core.errors import ConfigError

    try:
        value = float(raw)
    except ValueError:
        value = -1.0
    if value <= 0:
        raise ConfigError(
            f"invalid {name}={raw!r}; expected a positive number of seconds"
        )
    return value


def task_timeout_policy() -> Optional[float]:
    """The per-task watchdog deadline in seconds, or ``None`` when unset."""
    return _positive_float_env(TASK_TIMEOUT_ENV_VAR)


def task_retries_policy() -> int:
    """Transient-failure retries per task (default 1)."""
    raw = os.environ.get(TASK_RETRIES_ENV_VAR, "").strip()
    if not raw:
        return 1
    from repro.core.errors import ConfigError

    try:
        value = int(raw)
    except ValueError:
        value = -1
    if value < 0:
        raise ConfigError(
            f"invalid {TASK_RETRIES_ENV_VAR}={raw!r}; expected a "
            "non-negative integer"
        )
    return value


def retry_backoff_policy() -> float:
    """Base seconds of the deterministic respawn backoff (default 0.05)."""
    raw = os.environ.get(RETRY_BACKOFF_ENV_VAR, "").strip()
    if not raw:
        return 0.05
    from repro.core.errors import ConfigError

    try:
        value = float(raw)
    except ValueError:
        value = -1.0
    if value < 0:
        raise ConfigError(
            f"invalid {RETRY_BACKOFF_ENV_VAR}={raw!r}; expected a "
            "non-negative number of seconds"
        )
    return value


def degraded_serial_policy() -> bool:
    """Whether an unhealthy pool drains remaining shards in-parent (default)."""
    raw = os.environ.get(DEGRADED_SERIAL_ENV_VAR, "").strip().lower()
    if not raw:
        return True
    if raw in ("1", "true", "yes", "on"):
        return True
    if raw in ("0", "false", "no", "off"):
        return False
    from repro.core.errors import ConfigError

    raise ConfigError(
        f"invalid {DEGRADED_SERIAL_ENV_VAR}={raw!r}; expected 0/1"
    )


# ----------------------------------------------------------------------
# Parent-side watchdog (in-parent hangs: serial units, degraded drain)
# ----------------------------------------------------------------------
class _ParentDeadline:
    """A no-progress deadline over in-parent work, enforced by a monitor
    thread.

    The protected stretch calls :meth:`beat` at every progress point (unit
    finished, checkpoint shard merged).  A daemon monitor polls; once
    ``timeout`` seconds pass without a beat while the deadline is not
    :meth:`pause`-d, it fires **once**: warns, counts
    ``runner.watchdog.parent_timeout`` and interrupts the main thread.  The
    owning :func:`parent_deadline` context converts the resulting
    ``KeyboardInterrupt`` into :class:`ParentTimeoutError`; a genuine ^C
    (deadline never fired) passes through untouched.

    Pausing exists because the parent spends most of a pooled campaign
    *waiting on the pool* -- a stretch the pool's own watchdog already
    bounds; racing two watchdogs over it would misattribute worker hangs
    to the parent.
    """

    def __init__(self, what: str, timeout: float) -> None:
        self.what = what
        self.timeout = timeout
        self.fired = False
        self._on_main = threading.current_thread() is threading.main_thread()
        self._lock = threading.Lock()
        self._last_beat = time.monotonic()
        self._paused = 0
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    def start(self) -> None:
        self._monitor = threading.Thread(
            target=self._watch, name="repro-parent-watchdog", daemon=True
        )
        self._monitor.start()

    def stop(self) -> None:
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=1.0)
            self._monitor = None

    def beat(self) -> None:
        with self._lock:
            self._last_beat = time.monotonic()

    def pause(self) -> None:
        with self._lock:
            self._paused += 1

    def resume(self) -> None:
        with self._lock:
            if self._paused > 0:
                self._paused -= 1
            # Waiting on the pool made progress by definition; the clock
            # restarts when the parent picks the work back up.
            self._last_beat = time.monotonic()

    def _watch(self) -> None:
        poll = min(0.25, self.timeout / 4)
        while not self._stop.wait(poll):
            with self._lock:
                if self._paused:
                    continue
                if time.monotonic() - self._last_beat < self.timeout:
                    continue
                self.fired = True
            logger.warning(
                "parent watchdog: %s made no progress within %.3gs (%s); "
                "interrupting -- the campaign journal stays resumable",
                self.what,
                self.timeout,
                TASK_TIMEOUT_ENV_VAR,
            )
            _telemetry().count("runner.watchdog.parent_timeout")
            if self._on_main:
                try:
                    # A real SIGINT aimed at the main thread: unlike
                    # interrupt_main()'s between-bytecodes flag, it EINTRs
                    # whatever blocking C call the hang is stuck in.
                    signal.pthread_kill(
                        threading.main_thread().ident, signal.SIGINT
                    )
                except (AttributeError, ProcessLookupError, OSError):
                    _thread.interrupt_main()
            return


#: Innermost-active-last stack of armed parent deadlines.  The runner's
#: in-parent work is single-threaded, so a plain list suffices.
_parent_deadlines: List[_ParentDeadline] = []


@contextmanager
def parent_deadline(what: str):
    """Bound in-parent work by ``REPRO_TASK_TIMEOUT`` (no-op when unset).

    Also a no-op when an *outer* deadline is already armed: the outer
    context owns hang detection for everything nested under it, and its
    beats (via :func:`watchdog_beat`, which always targets the innermost
    armed deadline) keep flowing from the nested progress points.
    """
    timeout = task_timeout_policy()
    if timeout is None or _parent_deadlines:
        yield None
        return
    deadline = _ParentDeadline(what, timeout)
    _parent_deadlines.append(deadline)
    deadline.start()
    try:
        yield deadline
    except KeyboardInterrupt:
        if deadline.fired:
            raise ParentTimeoutError(
                f"{what} made no progress within {timeout:g}s "
                f"({TASK_TIMEOUT_ENV_VAR}); the campaign journal stays "
                "resumable -- rerun with --resume"
            ) from None
        raise
    finally:
        deadline.stop()
        _parent_deadlines.remove(deadline)


def watchdog_beat() -> None:
    """Record progress on the innermost armed parent deadline (if any)."""
    if _parent_deadlines:
        _parent_deadlines[-1].beat()


@contextmanager
def _paused_parent_deadline():
    """Suspend the armed parent deadline while the parent waits on the pool."""
    deadline = _parent_deadlines[-1] if _parent_deadlines else None
    if deadline is not None:
        deadline.pause()
    try:
        yield
    finally:
        if deadline is not None:
            deadline.resume()


@contextmanager
def _drain_deadline(what: str):
    """Arm hang detection for the degraded-serial drain.

    The drain runs under :func:`_paused_parent_deadline` (its caller,
    ``_run_tasks``, paused the outer deadline for the pool wait), so when
    an outer deadline exists it is *resumed* for the drain's duration and
    re-paused after -- the owning context still does the
    timeout-conversion.  With no outer deadline armed, a fresh one is.
    """
    outer = _parent_deadlines[-1] if _parent_deadlines else None
    if outer is not None:
        outer.resume()
        try:
            yield outer
        finally:
            outer.pause()
        return
    with parent_deadline(what) as deadline:
        yield deadline


# ----------------------------------------------------------------------
# Worker-side state and entry points (top-level so they pickle)
# ----------------------------------------------------------------------
#: Worker-resident CSR mirrors keyed by publication token.  The pcse-style
#: state/rate split: the mirror (attached segments + patched arrays + the
#: lazily built wave tables on the ``CSRGraph``) is long-lived worker state,
#: while each task carries only its source slice and a tiny sync chain.
_MIRRORS: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

#: Worker-side cap matching :data:`MAX_PUBLICATIONS`.
_MAX_MIRRORS = MAX_PUBLICATIONS


def _pool_worker_boot(src_path: str) -> None:
    """Pool initializer: make ``repro`` importable and warm the registry.

    Deliberately minimal -- everything policy-like (graph backend, wave
    width, telemetry, scenario home module) arrives *per task* via
    :func:`_apply_worker_context`, because a persistent pool outlives any
    single campaign's policies.
    """
    import sys

    if src_path and src_path not in sys.path:
        sys.path.insert(0, src_path)
    from repro.runner import registry

    registry._ensure_builtins()


def _apply_worker_context(ctx: Dict[str, Any]) -> None:
    """Re-force the parent's per-campaign policies inside the worker."""
    from repro.runner import executor

    executor._worker_init(
        "", ctx.get("module", ""), ctx["backend"], ctx["bfs_batch"], ctx["telemetry"]
    )
    if not ctx["telemetry"]:
        # A forked worker may have inherited a live parent collector; a
        # dark campaign must not keep feeding it.
        from repro.obs import telemetry

        telemetry.disable()


def _pool_run_shard(ctx: Dict[str, Any], scenario_name: str, shard):
    """Worker task: one batch of work units under the shipped context."""
    from repro.runner import executor, faults

    faults.fault_point("pool.task")
    _apply_worker_context(ctx)
    return executor._run_shard(scenario_name, ctx.get("module", ""), shard)


def _attach_segment(meta: Dict[str, Any]):
    """Attach one published array; returns ``(shm, ndarray-view)``.

    An ``OSError`` here -- the OS refusing the attach, or the injected
    ``pool.shm_attach`` fault -- is *transient*: the segment exists and the
    parent is healthy, so the failure surfaces as
    :class:`TransientTaskError` and the parent retries the task within its
    ``REPRO_TASK_RETRIES`` budget instead of failing the campaign.
    """
    import numpy as np
    from multiprocessing import shared_memory

    from repro.runner import faults

    try:
        faults.fault_point("pool.shm_attach")
        shm = shared_memory.SharedMemory(name=meta["name"])
    except OSError as error:
        raise TransientTaskError(
            f"failed to attach shared-memory segment {meta['name']!r}: {error}"
        ) from error
    try:
        # Attaching registers the segment with the resource tracker on
        # Python < 3.13.  Under spawn/forkserver each worker runs its *own*
        # tracker, which would unlink the parent-owned segment when the
        # worker exits -- so unregister there.  Under fork the tracker is
        # shared with the parent and its name set is deduplicated, so a
        # worker-side unregister would strip the parent's own registration
        # (the parent's later unlink-time unregister then trips a KeyError
        # inside the tracker); leave the shared entry alone.
        import multiprocessing

        if multiprocessing.get_start_method(allow_none=True) != "fork":
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    array = np.ndarray(
        tuple(meta["shape"]), dtype=np.dtype(meta["dtype"]), buffer=shm.buf
    )
    return shm, array


def _close_mirror_segments(state: Dict[str, Any]) -> None:
    for shm in state.get("segments", ()):
        try:
            shm.close()
        except Exception:
            pass
    state["segments"] = []


def _rebuild_mirror_csr(state: Dict[str, Any]) -> None:
    """(Re)wrap the mirror arrays in a CSRGraph, dropping stale wave tables."""
    from repro.graphs.fast import CSRGraph

    n = state["indptr"].size - 1
    state["csr"] = CSRGraph(
        list(range(n)), {}, state["indptr"], state["indices"], alive=state["alive"]
    )


def _patch_mirror(state: Dict[str, Any], patch: Dict[str, Any]) -> None:
    from repro.graphs import fast

    arrays = fast.apply_index_patch(
        state["indptr"], state["indices"], state["alive"], patch
    )
    if arrays is None:
        raise PoolError(
            "pool delta patch diverged from the published snapshot "
            "(worker mirror and parent CSR disagree)"
        )
    state["indptr"], state["indices"], state["alive"] = arrays
    # The patched arrays are private copies; the attach-generation segments
    # are no longer referenced by this mirror.
    _close_mirror_segments(state)
    _rebuild_mirror_csr(state)


def _sync_mirror(token: str, generation: int, chain: List[Dict[str, Any]], tel) -> Dict[str, Any]:
    """Bring this worker's mirror of ``token`` up to ``generation``.

    Fast path: the mirror is current (nothing to do) or behind by patches
    present in the chain (replay them).  Slow path: attach (or re-attach)
    from the chain's head segments, then replay the remaining patches.
    """
    state = _MIRRORS.get(token)
    if state is not None and state["generation"] == generation:
        _MIRRORS.move_to_end(token)
        return state
    patches = {
        entry["generation"]: entry for entry in chain if entry["kind"] == "patch"
    }
    if state is not None and state["generation"] < generation:
        wanted = range(state["generation"] + 1, generation + 1)
        if all(gen in patches for gen in wanted):
            for gen in wanted:
                _patch_mirror(state, patches[gen]["payload"])
            state["generation"] = generation
            if tel is not None:
                tel.count("runner.pool.shm_patch", len(wanted))
            _MIRRORS.move_to_end(token)
            return state

    head = chain[0]
    if head["kind"] != "attach":
        raise PoolError(f"pool sync chain for {token} has no attach head")
    reattach = state is not None
    if state is not None:
        _close_mirror_segments(state)
    segments: List[Any] = []
    arrays: Dict[str, Any] = {}
    try:
        for field in ("indptr", "indices", "alive"):
            meta = head["arrays"].get(field)
            if meta is None:
                arrays[field] = None
                continue
            shm, array = _attach_segment(meta)
            segments.append(shm)
            arrays[field] = array
    except BaseException:
        # A half-attached mirror must not leak handles while the parent
        # retries the task.
        _close_mirror_segments({"segments": segments})
        raise
    state = {
        "generation": head["generation"],
        "segments": segments,
        "indptr": arrays["indptr"],
        "indices": arrays["indices"],
        "alive": arrays["alive"],
    }
    _rebuild_mirror_csr(state)
    _MIRRORS[token] = state
    _MIRRORS.move_to_end(token)
    while len(_MIRRORS) > _MAX_MIRRORS:
        _, evicted = _MIRRORS.popitem(last=False)
        _close_mirror_segments(evicted)
    if tel is not None:
        tel.count("runner.pool.shm_reattach" if reattach else "runner.pool.shm_attach")
    for gen in range(head["generation"] + 1, generation + 1):
        entry = patches.get(gen)
        if entry is None:
            raise PoolError(
                f"pool sync chain for {token} is missing generation {gen}"
            )
        _patch_mirror(state, entry["payload"])
        if tel is not None:
            tel.count("runner.pool.shm_patch")
    state["generation"] = generation
    return state


def _pool_path_shard(
    ctx: Dict[str, Any], token: str, generation: int, chain: List[Dict[str, Any]], sources
):
    """Worker task: one source shard's exact ``(ecc, totals)`` accumulators.

    Returns ``(ecc, totals, telemetry_snapshot)``; the snapshot is ``None``
    with telemetry off, else the shard's worker-local collection (mirror
    sync counters, the ``runner.path_shard`` accumulate span, the wave
    engine's own counters) for the parent to merge.
    """
    from repro.graphs import fast

    from repro.runner import faults

    faults.fault_point("pool.path_task")
    _apply_worker_context(ctx)
    if not ctx["telemetry"]:
        state = _sync_mirror(token, generation, chain, None)
        ecc, totals = fast.accumulate_path_shard(state["csr"], sources)
        return ecc, totals, None
    from repro.obs import telemetry

    collector = telemetry.enable(label="path-shard")
    try:
        state = _sync_mirror(token, generation, chain, collector)
        collector.count("runner.path_shard.sources", int(len(sources)))
        with collector.span("runner.path_shard"):
            ecc, totals = fast.accumulate_path_shard(state["csr"], sources)
    finally:
        telemetry.disable()
    return ecc, totals, collector.snapshot()


# ----------------------------------------------------------------------
# Parent-side publication bookkeeping
# ----------------------------------------------------------------------
def _unlink_segments(segments: List[Any]) -> None:
    """Close and unlink shared-memory segments (idempotent, swallow races)."""
    for shm in segments:
        try:
            shm.close()
        except Exception:
            pass
        try:
            shm.unlink()
        except Exception:
            pass
    segments.clear()


class _Publication:
    """One graph's live shared-memory broadcast state."""

    __slots__ = (
        "token",
        "consumer",
        "stamp",
        "epoch",
        "generation",
        "chain",
        "segments",
        "base_csr",
        "graph_ref",
        "finalizer",
    )


class WorkerPool:
    """A persistent :class:`ProcessPoolExecutor` plus CSR publications.

    Obtain instances through :func:`get_pool`; direct construction is fine
    for tests.  Usable as a context manager; :meth:`close` is idempotent
    and also runs from the module ``atexit`` guard.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._executor: Optional[ProcessPoolExecutor] = None
        self._spinup_started = 0.0
        self._spinup_pending = False
        self._pubs: "OrderedDict[int, _Publication]" = OrderedDict()
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Shut the executor down and unlink every published segment."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for key in list(self._pubs):
            self._drop_publication(key)

    def terminate(self) -> None:
        """Close *now*: SIGKILL workers, never wait, unlink every segment.

        The interrupt path (``KeyboardInterrupt``/SIGINT mid-campaign):
        a hung or busy worker must not block the shutdown, and no
        ``repro-pool-*`` segment may survive in ``/dev/shm``.
        """
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            for process in list(getattr(self._executor, "_processes", {}).values()):
                try:
                    os.kill(process.pid, signal.SIGKILL)
                except (ProcessLookupError, OSError):
                    pass
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        for key in list(self._pubs):
            self._drop_publication(key)

    # -- executor -------------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._closed:
            raise PoolError("worker pool is closed")
        if self._executor is None:
            from repro.runner.executor import _repro_src_path

            self._spinup_started = time.perf_counter()
            self._spinup_pending = True
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_pool_worker_boot,
                initargs=(_repro_src_path(),),
            )
        return self._executor

    def _recreate_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    def _note_first_result(self) -> None:
        if self._spinup_pending:
            # Pool creation to first task back, as seen from the parent --
            # recorded once per executor lifetime, i.e. once per invocation
            # (plus once per respawn after a killed worker).
            _telemetry().record_span(
                "runner.pool_spinup", time.perf_counter() - self._spinup_started
            )
            self._spinup_pending = False

    # -- task fan-out ---------------------------------------------------
    def _watchdog_kill(self, timeout: float) -> None:
        """No task finished within the deadline: SIGKILL the pool's workers.

        Killing breaks the executor, which routes the hung tasks into the
        ordinary respawn-and-retry (or degraded-serial) machinery -- the
        one recovery path the pool already guarantees is exactly-once.
        """
        if self._executor is None:
            return
        processes = list(getattr(self._executor, "_processes", {}).values())
        pids = [process.pid for process in processes]
        logger.warning(
            "watchdog: no task completed within %.3gs; killing %d pool "
            "worker(s) %s and retrying unfinished shards",
            timeout,
            len(pids),
            pids,
        )
        _telemetry().count("runner.watchdog.kill")
        for process in processes:
            try:
                os.kill(process.pid, signal.SIGKILL)
            except (ProcessLookupError, OSError):
                pass

    def _drain_serially(
        self,
        remaining: Dict[int, Tuple],
        fallback: Callable[[int], Any],
        on_done: Callable[[int, Any], None],
    ) -> None:
        """Graceful degradation: finish the leftover tasks in-parent.

        Runs after the pool is declared unhealthy.  The fallback computes
        the *same* work from the same ``(index, params, seed)`` inputs, and
        results are merged through the same ``on_done``, so seeds, cache
        keys and the Welford drain order are untouched -- a degraded
        campaign is bit-identical to a clean one, just slower.
        """
        logger.warning(
            "worker pool declared unhealthy after repeated failures; "
            "finishing %d remaining task(s) serially in-parent "
            "(set %s=0 to fail fast instead)",
            len(remaining),
            DEGRADED_SERIAL_ENV_VAR,
        )
        _telemetry().count("runner.degraded_serial", len(remaining))
        self._recreate_executor()
        with _drain_deadline(
            f"degraded-serial drain ({len(remaining)} in-parent task(s))"
        ):
            for key in sorted(remaining):
                result = fallback(key)
                remaining.pop(key)
                on_done(key, result)
                watchdog_beat()

    def _run_tasks(
        self,
        fn: Callable[..., Any],
        tasks: Dict[int, Tuple],
        on_done: Callable[[int, Any], None],
        describe: Callable[[int], str],
        fallback: Optional[Callable[[int], Any]] = None,
    ) -> None:
        """Run every task, exactly-once merging results as they land.

        A :class:`BrokenProcessPool` (killed worker -- or the watchdog
        killing a hung one) respawns the executor after a deterministic
        backoff and resubmits only the tasks whose results were not merged
        yet; once respawns are exhausted the remaining tasks drain serially
        in-parent through ``fallback`` (or raise :class:`PoolError` when
        degradation is disabled or no fallback exists).  A worker-side
        :class:`TransientTaskError` resubmits just that task within its
        retry budget.  Any other task exception is re-raised as
        :class:`PoolTaskError` carrying ``describe(key)``.

        Any armed parent deadline is paused for the duration: while the
        parent waits on the pool, the pool's own watchdog owns hang
        detection (``_drain_serially`` resumes it -- in-parent work is the
        parent watchdog's jurisdiction again).
        """
        with _paused_parent_deadline():
            self._run_tasks_watched(fn, tasks, on_done, describe, fallback)

    def _run_tasks_watched(
        self,
        fn: Callable[..., Any],
        tasks: Dict[int, Tuple],
        on_done: Callable[[int, Any], None],
        describe: Callable[[int], str],
        fallback: Optional[Callable[[int], Any]] = None,
    ) -> None:
        from repro.runner import faults

        # Parse the fault spec in-parent before the first worker exists, so
        # the whole process tree shares one set of invocation counters.
        faults.ensure_loaded()
        tel = _telemetry()
        timeout = task_timeout_policy()
        max_retries = task_retries_policy()
        backoff = retry_backoff_policy()
        remaining = dict(tasks)
        retries: Dict[int, int] = {}
        respawns = 0
        while remaining:
            executor = self._ensure_executor()
            broken = False
            retried = False
            futures: Dict[Any, int] = {}
            try:
                for key, args in remaining.items():
                    futures[executor.submit(fn, *args)] = key
            except (BrokenProcessPool, RuntimeError):
                broken = True
            pending = set(futures)
            last_progress = time.monotonic()
            watchdog_fired = False
            try:
                while pending:
                    if timeout is None:
                        done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    else:
                        budget = timeout - (time.monotonic() - last_progress)
                        done, pending = wait(
                            pending,
                            timeout=max(budget, 0.05),
                            return_when=FIRST_COMPLETED,
                        )
                        if not done:
                            if (
                                not watchdog_fired
                                and time.monotonic() - last_progress >= timeout
                            ):
                                watchdog_fired = True
                                self._watchdog_kill(timeout)
                            continue
                    for future in done:
                        key = futures[future]
                        try:
                            result = future.result()
                        except BrokenProcessPool:
                            broken = True
                            continue
                        except TransientTaskError as error:
                            attempts = retries.get(key, 0)
                            if attempts >= max_retries:
                                raise PoolTaskError(describe(key)) from error
                            retries[key] = attempts + 1
                            retried = True
                            tel.count("runner.retry")
                            logger.warning(
                                "transient failure (attempt %d/%d) in %s: %s; "
                                "retrying",
                                attempts + 1,
                                max_retries,
                                describe(key),
                                error,
                            )
                            continue
                        except PoolError:
                            raise
                        except Exception as error:
                            raise PoolTaskError(describe(key)) from error
                        last_progress = time.monotonic()
                        self._note_first_result()
                        remaining.pop(key)
                        on_done(key, result)
            except BaseException:
                for future in pending:
                    future.cancel()
                raise
            if broken:
                respawns += 1
                if respawns > MAX_RESPAWNS:
                    if fallback is not None and degraded_serial_policy():
                        self._drain_serially(remaining, fallback, on_done)
                        return
                    raise PoolError(
                        f"worker pool broke {respawns} times (worker killed or "
                        f"crashed); {len(remaining)} task(s) unfinished; first "
                        f"pending: {describe(next(iter(remaining)))}"
                    )
                tel.count("runner.pool.respawn")
                if backoff > 0:
                    time.sleep(backoff * (2 ** (respawns - 1)))
                self._recreate_executor()
            elif remaining and not retried:
                # Every future drained without a break or a scheduled
                # retry, yet tasks are unfinished -- a logic error; loop
                # again would spin forever.
                raise PoolError(
                    f"{len(remaining)} task(s) unaccounted for after a "
                    f"clean drain; first: {describe(next(iter(remaining)))}"
                )

    def run_unit_shards(
        self,
        ctx: Dict[str, Any],
        scenario_name: str,
        shards: Sequence[Sequence[Tuple]],
        on_shard: Callable[[Any, Any], None],
    ) -> None:
        """Fan work-unit shards out; ``on_shard(results, snapshot)`` streams back."""
        tasks = {i: (ctx, scenario_name, shard) for i, shard in enumerate(shards)}

        def describe(key: int) -> str:
            return (
                f"scenario {scenario_name!r} shard failed in a pool worker; "
                f"units (index, params, seed): {list(shards[key])!r}"
            )

        def fallback(key: int):
            # Degraded-serial drain: the same (index, params, seed) units
            # run in-parent under the parent's own (already active)
            # policies -- no worker context to re-force, no snapshot to
            # merge (instrumented code feeds the live collector directly).
            from repro.runner import executor as executor_mod

            return executor_mod._run_shard(
                scenario_name, ctx.get("module", ""), shards[key]
            )

        self._run_tasks(
            _pool_run_shard,
            tasks,
            lambda key, result: on_shard(*result),
            describe,
            fallback=fallback,
        )

    def run_path_shards(
        self,
        graph,
        csr,
        shards: Sequence[Any],
        ctx: Dict[str, Any],
        on_result: Callable[[int, Any, Any, Any], None],
    ) -> None:
        """Fan path-metric source shards out over the published CSR mirror.

        ``on_result(shard_index, ecc, totals, snapshot)`` streams merged
        results back; the shard index lets the caller map each result onto
        its source span (sub-unit checkpoint journaling records completed
        shards by span).
        """
        pub = self.publish_csr(graph, csr)
        chain = list(pub.chain)
        tasks = {
            i: (ctx, pub.token, pub.generation, chain, shard)
            for i, shard in enumerate(shards)
        }

        def describe(key: int) -> str:
            shard = shards[key]
            return (
                f"path-metric shard {key} ({len(shard)} sources) failed in a "
                f"pool worker (publication {pub.token}, generation "
                f"{pub.generation})"
            )

        def fallback(key: int):
            # Degraded-serial drain against the parent's own CSR (the
            # authoritative copy the publication mirrors); integer
            # accumulators merge identically wherever they were computed.
            from repro.graphs import fast

            ecc, totals = fast.accumulate_path_shard(csr, shards[key])
            return ecc, totals, None

        self._run_tasks(
            _pool_path_shard,
            tasks,
            lambda key, result: on_result(key, *result),
            describe,
            fallback=fallback,
        )

    # -- shared-memory publication --------------------------------------
    def publish_csr(self, graph, csr) -> _Publication:
        """Make ``csr`` (a snapshot of ``graph``) available to the workers.

        First sight of a graph creates shared-memory segments and an attach
        chain head.  Later calls ship only the delta patch when the graph's
        log covers the interval *and* the parent cache kept the same index
        space (same epoch, i.e. no compacting rebuild in between); anything
        else -- overflowed log, compaction, over-long chain -- re-attaches
        with fresh segments.
        """
        if self._closed:
            raise PoolError("worker pool is closed")
        tel = _telemetry()
        key = id(graph)
        pub = self._pubs.get(key)
        if pub is not None and pub.graph_ref() is not graph:
            # id() reuse after the original graph died: drop the corpse.
            self._drop_publication(key)
            pub = None
        stamp = graph.mutation_stamp
        epoch = getattr(csr, "epoch", -1)
        if pub is not None and pub.stamp == stamp and pub.epoch == epoch:
            self._pubs.move_to_end(key)
            return pub

        if pub is None:
            pub = self._attach_publication(key, graph, csr)
            if tel.enabled:
                tel.count("runner.pool.publish_attach")
        else:
            from repro.graphs import fast

            patch = None
            if epoch == pub.epoch and len(pub.chain) < MAX_SYNC_CHAIN:
                ops = graph.delta_since(pub.stamp, consumer=pub.consumer)
                if ops is not None:
                    patch = fast.resolve_index_patch(pub.base_csr, ops, graph)
            if patch is None:
                self._reattach_publication(pub, csr)
                if tel.enabled:
                    tel.count("runner.pool.publish_reattach")
            else:
                pub.generation += 1
                pub.chain.append(
                    {"kind": "patch", "generation": pub.generation, "payload": patch}
                )
                if tel.enabled:
                    tel.count("runner.pool.publish_patch")
                    tel.count(
                        "runner.pool.bytes_shipped",
                        sum(
                            int(value.nbytes)
                            for value in patch.values()
                            if hasattr(value, "nbytes")
                        ),
                    )
        pub.stamp = stamp
        pub.epoch = epoch
        pub.base_csr = csr
        graph.reset_delta_log(consumer=pub.consumer)
        if tel.enabled:
            tel.gauge("runner.pool.generation", pub.generation)
        self._pubs.move_to_end(key)
        while len(self._pubs) > MAX_PUBLICATIONS:
            oldest = next(iter(self._pubs))
            self._drop_publication(oldest)
        return pub

    def _create_segments(self, csr) -> Tuple[List[Any], Dict[str, Any], int]:
        import numpy as np
        from multiprocessing import shared_memory

        segments: List[Any] = []
        metas: Dict[str, Any] = {}
        shipped = 0
        for name, array in (
            ("indptr", csr.indptr),
            ("indices", csr.indices),
            ("alive", csr.alive),
        ):
            if array is None:
                metas[name] = None
                continue
            data = np.ascontiguousarray(array)
            shm = shared_memory.SharedMemory(
                create=True,
                size=max(1, int(data.nbytes)),
                name=SHM_PREFIX + uuid.uuid4().hex[:16],
            )
            view = np.ndarray(data.shape, dtype=data.dtype, buffer=shm.buf)
            view[:] = data
            segments.append(shm)
            metas[name] = {
                "name": shm.name,
                "shape": list(data.shape),
                "dtype": str(data.dtype),
            }
            shipped += int(data.nbytes)
        return segments, metas, shipped

    def _attach_publication(self, key: int, graph, csr) -> _Publication:
        pub = _Publication()
        pub.token = uuid.uuid4().hex[:12]
        pub.consumer = f"pool:{pub.token}"
        pub.generation = 1
        pub.segments = []
        segments, metas, shipped = self._create_segments(csr)
        pub.segments.extend(segments)
        pub.chain = [{"kind": "attach", "generation": 1, "arrays": metas}]
        pub.graph_ref = weakref.ref(graph)
        # Deterministic /dev/shm release even when the graph dies before the
        # pool closes (checkpoint subgraphs are short-lived): the finalizer
        # captures the mutable segment list, never the graph.
        pub.finalizer = weakref.finalize(graph, _unlink_segments, pub.segments)
        self._pubs[key] = pub
        tel = _telemetry()
        if tel.enabled:
            tel.count("runner.pool.bytes_shipped", shipped)
        return pub

    def _reattach_publication(self, pub: _Publication, csr) -> None:
        _unlink_segments(pub.segments)
        segments, metas, shipped = self._create_segments(csr)
        pub.segments.extend(segments)
        pub.generation += 1
        pub.chain = [
            {"kind": "attach", "generation": pub.generation, "arrays": metas}
        ]
        tel = _telemetry()
        if tel.enabled:
            tel.count("runner.pool.bytes_shipped", shipped)

    def _drop_publication(self, key: int) -> None:
        pub = self._pubs.pop(key, None)
        if pub is None:
            return
        graph = pub.graph_ref()
        if graph is not None:
            try:
                graph.drop_delta_consumer(pub.consumer)
            except Exception:
                pass
        # Runs _unlink_segments at most once; a later graph-death no-ops.
        pub.finalizer()


# ----------------------------------------------------------------------
# Module-level pool registry (one pool per worker count per invocation)
# ----------------------------------------------------------------------
_POOLS: Dict[int, WorkerPool] = {}


def get_pool(workers: int) -> WorkerPool:
    """The invocation-wide persistent pool for ``workers`` processes."""
    pool = _POOLS.get(workers)
    if pool is None or pool.closed:
        pool = WorkerPool(workers)
        _POOLS[workers] = pool
    return pool


def shutdown_pools(*, terminate: bool = False) -> None:
    """Close every registered pool (idempotent; also the ``atexit`` guard).

    ``terminate=True`` is the interrupt path: workers are SIGKILLed and the
    shutdown never waits, so a hung worker cannot block a ^C.
    """
    for pool in list(_POOLS.values()):
        if terminate:
            pool.terminate()
        else:
            pool.close()
    _POOLS.clear()


atexit.register(shutdown_pools)
