#!/usr/bin/env python3
"""Walkthrough of the simulated Tor hidden-service machinery (paper §III).

Reproduces, step by step, the mechanics of Figures 1 and 2:

1. a steady-state Tor network with an hourly consensus and an HSDir ring;
2. a hidden service derives its identifier and ``.onion`` name from its key,
   picks introduction points, and publishes signed descriptors to the six
   responsible HSDirs computed from the descriptor-ID recipe;
3. a client that only knows the onion name computes the same HSDirs, fetches
   the descriptor and builds a rendezvous connection -- mutual anonymity;
4. a defender runs the HSDir-interception mitigation (section VI-A) against
   the service and the service escapes by rotating its address.

Run with:  python examples/hidden_service_walkthrough.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.crypto.keys import KeyPair  # noqa: E402
from repro.defenses import HsdirInterception  # noqa: E402
from repro.sim import Simulator  # noqa: E402
from repro.tor import TorNetwork, TorNetworkConfig, responsible_hsdirs, service_identifier  # noqa: E402
from repro.tor.hidden_service import ServiceUnreachable  # noqa: E402


def main() -> None:
    simulator = Simulator(seed=3)
    network = TorNetwork(simulator, TorNetworkConfig(num_relays=40))
    consensus = network.bootstrap()
    print(f"Bootstrapped a Tor model with {len(consensus)} relays, "
          f"{len(consensus.hsdirs())} of them HSDir-eligible (25h uptime).")

    # --- hosting ---------------------------------------------------------
    service_key = KeyPair.from_seed(b"walkthrough-service")
    host = network.host_service(service_key, lambda payload, conn: b"hello from the hidden service")
    identifier = service_identifier(service_key.public)
    print(f"\nService identifier (first 80 bits of SHA-1 of the public key): {identifier.hex()}")
    print(f"Onion address (base32 of the identifier): {host.onion_address}")
    print(f"Introduction points chosen: {len(host.introduction_points)}")

    responsible = responsible_hsdirs(network.consensus, identifier, simulator.now)
    print(f"Responsible HSDirs on the fingerprint ring ({len(responsible)}, 2 replicas x 3):")
    for entry in responsible:
        print(f"  {entry.nickname:12s} fingerprint={entry.fingerprint.hex()[:16]}…")

    # --- client connection ----------------------------------------------
    print("\nA client that knows only the onion name connects (Figure 1 steps 3-7):")
    reply = network.send_to("alice", host.onion_address, b"GET /")
    print(f"  reply received through the rendezvous circuit: {reply!r}")
    print(f"  cells relayed so far: {simulator.metrics.counters.get('tor.cells_relayed')}")

    # --- HSDir interception (section VI-A) -------------------------------
    print("\nDefender launches HSDir interception against the service...")
    defender = HsdirInterception(network)
    result = defender.intercept(host.onion_address)
    network.publish_descriptor(host)  # the service republishes as usual
    print(f"  crafted relays injected: {result.relays_injected}, "
          f"lead time: {result.lead_time_hours:.0f} hours")
    print(f"  responsible HSDirs now controlled: {result.responsible_controlled}/{result.responsible_total}")
    try:
        network.lookup_descriptor(host.onion_address)
        print("  lookup unexpectedly succeeded")
    except ServiceUnreachable:
        print("  descriptor lookups now FAIL — the current address is denied")

    # --- escape by rotation ----------------------------------------------
    new_key = KeyPair.from_seed(b"walkthrough-service-period-2")
    new_address = network.rotate_service_key(host, new_key)
    print(f"\nThe service rotates to a fresh address: {new_address}")
    reply = network.send_to("alice", new_address, b"GET /")
    print(f"  client reaches it immediately: {reply!r}")
    print("  (the defender would need another 6 crafted relays and another 25+ hours)")


if __name__ == "__main__":
    main()
