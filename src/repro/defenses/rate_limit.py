"""Rate-limited peering admission (paper section VII-A).

"The same approach can be used in the rate limiting, where the delay of
accepting new nodes is increased proportional to the size of peer list."  Like
proof-of-work, rate limiting slows SOAP clone floods -- a target only accepts
a new peer every so often, and the interval grows with its current degree --
but it equally delays legitimate self-repair after takedowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable

from repro.adversary.soap import AdmissionDecision
from repro.core.ddsr import DDSROverlay

NodeId = Hashable


@dataclass
class RateLimitParameters:
    """Tuning of the rate-limited admission scheme.

    ``base_delay`` seconds are charged per admitted peering; the delay grows by
    ``per_degree_delay`` seconds for every peer the target already has.  A
    target rejects outright any request arriving while it is still "cooling
    down" if the requester is unwilling to wait more than
    ``max_acceptable_delay`` seconds (the defender's patience per clone).
    """

    base_delay: float = 60.0
    per_degree_delay: float = 30.0
    max_acceptable_delay: float = 3600.0

    def __post_init__(self) -> None:
        if self.base_delay < 0 or self.per_degree_delay < 0:
            raise ValueError("delays must be non-negative")


@dataclass
class RateLimitedAdmission:
    """Degree-proportional peering delay, usable as a SOAP admission policy."""

    params: RateLimitParameters = field(default_factory=RateLimitParameters)
    total_delay_charged: float = 0.0
    total_rejected: int = 0
    requests_seen: Dict[NodeId, int] = field(default_factory=dict)

    def delay_for(self, target: NodeId, overlay: DDSROverlay) -> float:
        """Waiting time the next peering request to ``target`` must accept."""
        degree = overlay.degree(target) if target in overlay.graph else 0
        backlog = self.requests_seen.get(target, 0)
        return self.params.base_delay + self.params.per_degree_delay * (degree + backlog)

    def __call__(self, target: NodeId, requester: NodeId, overlay: DDSROverlay) -> AdmissionDecision:
        """Admission decision for one peering request."""
        delay = self.delay_for(target, overlay)
        self.requests_seen[target] = self.requests_seen.get(target, 0) + 1
        if delay > self.params.max_acceptable_delay:
            self.total_rejected += 1
            return AdmissionDecision(accepted=False, delay_seconds=0.0)
        self.total_delay_charged += delay
        return AdmissionDecision(accepted=True, delay_seconds=delay)

    # ------------------------------------------------------------------
    def repair_delay(self, overlay: DDSROverlay, repaired_edges: int) -> float:
        """Extra time legitimate self-repair needs under this policy.

        Each repair edge is a peering accepted after the base delay plus the
        average-degree-proportional component -- the recoverability cost the
        paper warns about.
        """
        if repaired_edges <= 0:
            return 0.0
        nodes = overlay.nodes()
        if nodes:
            average_degree = sum(overlay.degree(node) for node in nodes) / len(nodes)
        else:
            average_degree = 0.0
        per_edge = self.params.base_delay + self.params.per_degree_delay * average_degree
        return per_edge * repaired_edges

    def reset_window(self) -> None:
        """Forget request backlogs (e.g. at a rotation boundary)."""
        self.requests_seen.clear()
