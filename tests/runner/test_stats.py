"""Tests for streaming (Welford) aggregation."""

import math
import random
import statistics

import pytest

from repro.runner.stats import MetricAggregator, StreamingStat, summarize_trials


class TestStreamingStat:
    def test_matches_batch_statistics(self):
        rng = random.Random(0)
        values = [rng.uniform(-50, 50) for _ in range(500)]
        stat = StreamingStat()
        for value in values:
            stat.push(value)
        assert stat.count == 500
        assert stat.mean == pytest.approx(statistics.fmean(values))
        assert stat.variance == pytest.approx(statistics.variance(values))
        assert stat.std == pytest.approx(statistics.stdev(values))
        assert stat.minimum == min(values)
        assert stat.maximum == max(values)

    def test_single_observation_has_zero_spread(self):
        stat = StreamingStat()
        stat.push(3.5)
        assert stat.variance == 0.0
        assert stat.std == 0.0
        assert stat.ci95 == 0.0

    def test_ci95_shrinks_with_sample_size(self):
        small, large = StreamingStat(), StreamingStat()
        rng = random.Random(1)
        draws = [rng.gauss(0, 1) for _ in range(400)]
        for value in draws[:20]:
            small.push(value)
        for value in draws:
            large.push(value)
        assert large.ci95 < small.ci95

    def test_merge_equals_serial(self):
        rng = random.Random(2)
        values = [rng.uniform(0, 10) for _ in range(301)]
        serial = StreamingStat()
        for value in values:
            serial.push(value)
        left, right = StreamingStat(), StreamingStat()
        for value in values[:97]:
            left.push(value)
        for value in values[97:]:
            right.push(value)
        left.merge(right)
        assert left.count == serial.count
        assert left.mean == pytest.approx(serial.mean)
        assert left.variance == pytest.approx(serial.variance)
        assert left.minimum == serial.minimum
        assert left.maximum == serial.maximum

    def test_merge_into_empty(self):
        empty, other = StreamingStat(), StreamingStat()
        other.push(1.0)
        other.push(2.0)
        empty.merge(other)
        assert empty.count == 2
        assert empty.mean == pytest.approx(1.5)


class TestMetricAggregator:
    def test_row_single_trial_uses_plain_names(self):
        aggregator = summarize_trials([{"metric": 4.0}])
        assert aggregator.row() == {"metric": 4.0}

    def test_row_multi_trial_emits_mean_std_ci(self):
        aggregator = summarize_trials([{"m": 1.0}, {"m": 3.0}])
        row = aggregator.row()
        assert row["m_mean"] == pytest.approx(2.0)
        assert row["m_std"] == pytest.approx(math.sqrt(2.0))
        assert row["m_ci95"] > 0.0

    def test_metric_order_is_first_seen(self):
        aggregator = MetricAggregator()
        aggregator.push({"b": 1.0, "a": 2.0})
        aggregator.push({"a": 3.0, "c": 4.0})
        assert aggregator.metric_names() == ["b", "a", "c"]
        assert aggregator.trials() == 2
