"""Simulated clock.

The OnionBots evaluation reasons about wall-clock driven behaviour in several
places -- hidden-service descriptors are republished every 24 hours, HSDir
flags require 25 hours of relay uptime, the consensus is refreshed hourly and
bots rotate their ``.onion`` address once per *period* (typically a day).  The
:class:`SimClock` keeps simulated time in seconds and exposes helpers for those
protocol-level units so the rest of the code never multiplies magic constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Number of simulated seconds per minute/hour/day.  Kept as module constants
#: so workloads and tests can express schedules in natural units.
SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86400


class ClockError(RuntimeError):
    """Raised when the simulated clock would move backwards."""


@dataclass
class SimClock:
    """A monotonically advancing simulated clock.

    Parameters
    ----------
    start:
        Initial simulated timestamp in seconds.  Experiments usually start at
        ``0`` but the Tor descriptor arithmetic is happier with a "realistic"
        epoch, so callers may pass any non-negative float.
    """

    start: float = 0.0
    _now: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ClockError(f"clock cannot start at negative time {self.start!r}")
        self._now = float(self.start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp``.

        Raises
        ------
        ClockError
            If ``timestamp`` is earlier than the current simulated time.
        """
        if timestamp < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def advance_by(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds (must be >= 0)."""
        if delta < 0:
            raise ClockError(f"cannot advance clock by negative delta {delta!r}")
        return self.advance_to(self._now + delta)

    # ------------------------------------------------------------------
    # Protocol-unit helpers
    # ------------------------------------------------------------------
    @property
    def hours(self) -> float:
        """Current simulated time expressed in hours."""
        return self._now / SECONDS_PER_HOUR

    @property
    def days(self) -> float:
        """Current simulated time expressed in days."""
        return self._now / SECONDS_PER_DAY

    def period_index(self, period_seconds: float = SECONDS_PER_DAY) -> int:
        """Index of the current period (used for ``.onion`` rotation).

        The paper derives each new bot address from ``H(K_B, i_p)`` where
        ``i_p`` is "the index of period (e.g. day)"; this helper computes that
        index from simulated time.
        """
        if period_seconds <= 0:
            raise ClockError(f"period must be positive, got {period_seconds!r}")
        return int(self._now // period_seconds)

    def seconds_until_period(self, period_seconds: float = SECONDS_PER_DAY) -> float:
        """Seconds remaining until the next period boundary."""
        if period_seconds <= 0:
            raise ClockError(f"period must be positive, got {period_seconds!r}")
        current = self.period_index(period_seconds)
        boundary = (current + 1) * period_seconds
        return boundary - self._now
