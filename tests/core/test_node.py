"""Tests for individual OnionBot nodes."""

import pytest

from repro.core.config import OnionBotConfig
from repro.core.errors import MessageError
from repro.core.messaging import CommandMessage, MessageKind, build_envelope
from repro.core.node import OnionBotNode
from repro.crypto.kdf import derive_group_key, kdf
from repro.crypto.keys import KeyPair

BOTMASTER = KeyPair.from_seed(b"node-test-botmaster")
NETWORK_KEY = kdf("onionbot.network-key", BOTMASTER.private)


def make_bot(label: str = "bot-x") -> OnionBotNode:
    bot = OnionBotNode(
        label=label,
        botmaster_public=BOTMASTER.public,
        network_key=NETWORK_KEY,
        bot_key=kdf("onionbot.bot-key", label.encode()),
        config=OnionBotConfig(),
    )
    bot.infect(0.0)
    return bot


def rallied_bot(label: str = "bot-x") -> OnionBotNode:
    bot = make_bot(label)
    bot.rally({"peeronionaddress1.onion"}, 10.0)
    return bot


def signed_broadcast(command: str = "noop", nonce: str = "n-1", **kwargs) -> CommandMessage:
    return CommandMessage(
        kind=MessageKind.COMMAND_BROADCAST,
        command=command,
        nonce=nonce,
        issued_at=kwargs.pop("issued_at", 0.0),
        **kwargs,
    ).signed_by(BOTMASTER)


class TestIdentityRotation:
    def test_onion_changes_across_periods(self):
        bot = make_bot()
        day = bot.config.rotation_period
        assert bot.onion_at(0.0) != bot.onion_at(day + 1)

    def test_onion_stable_within_period(self):
        bot = make_bot()
        assert bot.onion_at(100.0) == bot.onion_at(bot.config.rotation_period - 100.0)

    def test_address_plan_matches_node(self):
        bot = make_bot()
        assert bot.address_plan.address_at(5000.0) == bot.onion_at(5000.0)


class TestLifecycleIntegration:
    def test_rally_produces_key_report_the_botmaster_can_open(self):
        bot = make_bot()
        report = bot.rally({"peer.onion" * 2}, 100.0)
        assert report.open_with(BOTMASTER) == bot.bot_key
        assert bot.lifecycle.stage.value == "waiting"

    def test_neutralize_clears_peers_and_deactivates(self):
        bot = rallied_bot()
        bot.neutralize(50.0)
        assert not bot.is_active
        assert bot.peer_addresses == set()

    def test_neutralize_is_idempotent(self):
        bot = rallied_bot()
        bot.neutralize(50.0)
        bot.neutralize(60.0)
        assert not bot.is_active


class TestPeerListMaintenance:
    def test_learn_and_forget_peer(self):
        bot = rallied_bot()
        bot.learn_peer("newpeeronionaddr.onion")
        assert bot.peer_count() == 2
        bot.forget_peer("newpeeronionaddr.onion")
        assert bot.peer_count() == 1

    def test_replace_peer_address_on_rotation_announcement(self):
        bot = rallied_bot()
        bot.replace_peer_address("peeronionaddress1.onion", "rotatedonionaddr1.onion")
        assert "rotatedonionaddr1.onion" in bot.peer_addresses
        assert "peeronionaddress1.onion" not in bot.peer_addresses

    def test_replace_unknown_address_is_noop(self):
        bot = rallied_bot()
        bot.replace_peer_address("unknown.onion", "new.onion")
        assert "new.onion" not in bot.peer_addresses


class TestCommandProcessing:
    def test_accepts_botmaster_signed_broadcast(self):
        bot = rallied_bot()
        assert bot.process_command(signed_broadcast(), 20.0) is True
        assert bot.executed[0].command == "noop"

    def test_rejects_unsigned_command(self):
        bot = rallied_bot()
        unsigned = CommandMessage(kind=MessageKind.COMMAND_BROADCAST, command="noop", nonce="u-1")
        assert bot.process_command(unsigned, 20.0) is False
        assert bot.rejected_messages == 1

    def test_rejects_command_signed_by_stranger(self):
        bot = rallied_bot()
        stranger = KeyPair.from_seed(b"stranger")
        forged = CommandMessage(
            kind=MessageKind.COMMAND_BROADCAST, command="noop", nonce="f-1"
        ).signed_by(stranger)
        assert bot.process_command(forged, 20.0) is False

    def test_rejects_replayed_nonce(self):
        bot = rallied_bot()
        message = signed_broadcast(nonce="replay-me")
        assert bot.process_command(message, 20.0) is True
        assert bot.process_command(message, 21.0) is False
        assert len(bot.executed) == 1

    def test_rejects_expired_command(self):
        bot = rallied_bot()
        message = signed_broadcast(nonce="exp-1", expires_at=10.0)
        assert bot.process_command(message, 20.0) is False

    def test_ignores_directed_command_for_other_bot(self):
        bot = rallied_bot()
        other_target = CommandMessage(
            kind=MessageKind.COMMAND_DIRECTED,
            command="noop",
            targets=["someotherbotaddr.onion"],
            nonce="d-1",
        ).signed_by(BOTMASTER)
        assert bot.process_command(other_target, 20.0) is False

    def test_accepts_directed_command_for_own_address(self):
        bot = rallied_bot()
        message = CommandMessage(
            kind=MessageKind.COMMAND_DIRECTED,
            command="noop",
            targets=[str(bot.onion_at(20.0))],
            nonce="d-2",
        ).signed_by(BOTMASTER)
        assert bot.process_command(message, 20.0) is True

    def test_neutralized_bot_ignores_commands(self):
        bot = rallied_bot()
        bot.neutralize(15.0)
        assert bot.process_command(signed_broadcast(nonce="n-2"), 20.0) is False


class TestEnvelopeHandling:
    def test_try_open_with_network_key(self):
        bot = rallied_bot()
        message = signed_broadcast(nonce="env-1")
        envelope = build_envelope(message.to_bytes(), NETWORK_KEY, b"r" * 32)
        opened = bot.try_open(envelope, 20.0)
        assert opened is not None and opened.nonce == "env-1"

    def test_try_open_with_bot_key(self):
        bot = rallied_bot()
        message = signed_broadcast(nonce="env-2")
        envelope = build_envelope(message.to_bytes(), bot.bot_key, b"r" * 32)
        assert bot.try_open(envelope, 20.0) is not None

    def test_try_open_with_unknown_key_returns_none(self):
        bot = rallied_bot()
        envelope = build_envelope(b"opaque", b"a key the bot does not hold", b"r" * 32)
        assert bot.try_open(envelope, 20.0) is None

    def test_group_key_routing(self):
        bot = rallied_bot()
        group_key = derive_group_key(BOTMASTER.private, "miners")
        bot.group_keys["miners"] = group_key
        assert bot.key_for(MessageKind.COMMAND_GROUP, "miners") == group_key
        with pytest.raises(MessageError):
            bot.key_for(MessageKind.COMMAND_GROUP, "unknown-group")

    def test_key_for_report_kind_rejected(self):
        bot = rallied_bot()
        with pytest.raises(MessageError):
            bot.key_for(MessageKind.KEY_REPORT)

    def test_wrap_command_produces_fixed_size_envelope(self):
        bot = rallied_bot()
        envelope = bot.wrap_command(signed_broadcast(nonce="w-1"), b"r" * 32)
        assert envelope.size == 2048

    def test_relay_counter(self):
        bot = rallied_bot()
        bot.record_relay()
        bot.record_relay()
        assert bot.relayed_envelopes == 2
