"""Proof-of-work peering admission (paper section VII-A).

"In the proof of work scheme each new node needs to do some work before being
accepted as a peer of an already existing node.  As more nodes request peering
with a node, the complexity of the task is increased to give preference to the
older nodes."  The scheme makes SOAP clone floods expensive -- every clone must
pay an escalating amount of work per target -- at the cost of also making
legitimate repairs (which are themselves new peering requests) slower.

:class:`PowAdmission` implements the paper's escalation rule as an admission
policy compatible with :class:`repro.adversary.soap.SoapAttack`, so the
trade-off can be swept in the ``bench_pow_tradeoff`` benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable

from repro.adversary.soap import AdmissionDecision
from repro.core.ddsr import DDSROverlay

NodeId = Hashable


@dataclass
class PowParameters:
    """Tuning of the proof-of-work admission scheme.

    ``base_work`` is the cost of the first peering request a target sees in
    the current window; each subsequent request multiplies the cost by
    ``escalation_factor`` (capped at ``max_work``).  ``work_budget_per_clone``
    is what the defender is modelled to afford per clone before giving up on a
    request; requests above it are rejected outright.
    """

    base_work: float = 1.0
    escalation_factor: float = 2.0
    max_work: float = 4096.0
    work_budget_per_clone: float = 256.0

    def __post_init__(self) -> None:
        if self.base_work <= 0:
            raise ValueError(f"base_work must be positive, got {self.base_work}")
        if self.escalation_factor < 1.0:
            raise ValueError(
                f"escalation_factor must be >= 1, got {self.escalation_factor}"
            )


@dataclass
class PowAdmission:
    """Escalating proof-of-work admission policy.

    Instances are callable with the ``(target, requester, overlay)`` signature
    the SOAP attack expects, so they can be plugged straight into
    ``SoapAttack(admission=...)``.  The same policy also prices *legitimate*
    repairs via :meth:`repair_cost`, which the trade-off benchmark reports.
    """

    params: PowParameters = field(default_factory=PowParameters)
    #: Number of peering requests each target has received so far.
    request_counts: Dict[NodeId, int] = field(default_factory=dict)
    total_work_charged: float = 0.0
    total_rejected: int = 0

    def current_cost(self, target: NodeId) -> float:
        """Work a *new* peering request to ``target`` costs right now."""
        seen = self.request_counts.get(target, 0)
        if self.params.escalation_factor > 1.0:
            # Cap the exponent: beyond ~64 doublings the cost is astronomically
            # above any max_work, and the naive power would overflow a float.
            seen = min(seen, 64)
        cost = self.params.base_work * (self.params.escalation_factor ** seen)
        return min(cost, self.params.max_work)

    def __call__(self, target: NodeId, requester: NodeId, overlay: DDSROverlay) -> AdmissionDecision:
        """Admission decision for one peering request."""
        cost = self.current_cost(target)
        self.request_counts[target] = self.request_counts.get(target, 0) + 1
        if cost > self.params.work_budget_per_clone:
            self.total_rejected += 1
            # The requester still burned its budget discovering the price.
            self.total_work_charged += self.params.work_budget_per_clone
            return AdmissionDecision(
                accepted=False, work_required=self.params.work_budget_per_clone
            )
        self.total_work_charged += cost
        return AdmissionDecision(accepted=True, work_required=cost)

    # ------------------------------------------------------------------
    # Cost to the botnet itself
    # ------------------------------------------------------------------
    def repair_cost(self, repaired_edges: int) -> float:
        """Work legitimate bots must spend to re-peer after ``repaired_edges`` repairs.

        Every repair edge is itself a peering request subject to the same
        pricing; we charge each at the base rate (repairs are spread over many
        targets, so escalation rarely kicks in for them) -- this is the
        "decreased flexibility and recoverability" half of the paper's
        trade-off.
        """
        return repaired_edges * self.params.base_work

    def reset_window(self) -> None:
        """Forget request history (e.g. at a rotation boundary)."""
        self.request_counts.clear()
