"""Figure 4 -- closeness and degree centrality, with and without pruning.

Paper setup: k-regular graphs (k = 5, 10, 15) of 5000 nodes, 30 % incremental
node deletions, average closeness centrality (4a/4b) and degree centrality
(4c/4d) with and without pruning.  The benchmark regenerates all four panels
at a reduced default size (the shapes are size-independent; pass the paper's
n=5000 through ``run_fig4_centrality`` to reproduce the original scale).

Expected shapes (paper): closeness centrality stays roughly flat under
deletions in both variants; degree centrality grows sharply *without* pruning
and stays near its initial value *with* pruning.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.experiments import run_fig4_centrality
from repro.analysis.reporting import format_series

#: Reduced-scale parameters used by the benchmark run.
N_NODES = 600
CHECKPOINTS = 6
CLOSENESS_SAMPLE = 40
DEGREES = (5, 10, 15)


def _render(results):
    lines = []
    for curve in results:
        lines.append(format_series(f"closeness[{curve.label()}]", curve.deletions, curve.closeness))
        lines.append(
            format_series(
                f"degree-centrality[{curve.label()}]", curve.deletions, curve.degree_centrality
            )
        )
    return "\n".join(lines)


def test_fig4ab_closeness_with_and_without_pruning(benchmark):
    """Figures 4a/4b: average closeness centrality under 30 % deletions."""

    def run():
        with_pruning = run_fig4_centrality(
            n=N_NODES, degrees=DEGREES, checkpoints=CHECKPOINTS,
            closeness_sample=CLOSENESS_SAMPLE, pruning=True, seed=4,
        )
        without_pruning = run_fig4_centrality(
            n=N_NODES, degrees=DEGREES, checkpoints=CHECKPOINTS,
            closeness_sample=CLOSENESS_SAMPLE, pruning=False, seed=4,
        )
        return with_pruning, without_pruning

    with_pruning, without_pruning = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Figure 4a — closeness centrality (without pruning)", _render(without_pruning))
    emit("Figure 4b — closeness centrality (with pruning)", _render(with_pruning))

    # Shape check: closeness does not collapse under deletions in either case.
    for curve in (*with_pruning, *without_pruning):
        assert curve.closeness[-1] > 0.5 * curve.closeness[0]


def test_fig4cd_degree_centrality_with_and_without_pruning(benchmark):
    """Figures 4c/4d: average degree centrality under 30 % deletions."""

    def run():
        with_pruning = run_fig4_centrality(
            n=N_NODES, degrees=DEGREES, checkpoints=CHECKPOINTS,
            closeness_sample=8, pruning=True, seed=5,
        )
        without_pruning = run_fig4_centrality(
            n=N_NODES, degrees=DEGREES, checkpoints=CHECKPOINTS,
            closeness_sample=8, pruning=False, seed=5,
        )
        return with_pruning, without_pruning

    with_pruning, without_pruning = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Figure 4c — degree centrality (without pruning)", _render(without_pruning))
    emit("Figure 4d — degree centrality (with pruning)", _render(with_pruning))

    for pruned, unpruned in zip(with_pruning, without_pruning):
        # Without pruning the degree (and its centrality) inflates well beyond
        # the pruned variant; with pruning the maximum degree stays <= d_max.
        assert unpruned.degree_centrality[-1] > pruned.degree_centrality[-1]
        assert max(pruned.max_degree) <= 15
        assert max(unpruned.max_degree) > 15
