"""Tests for the augmented Table I builder."""

from repro.analysis.table1 import build_table1


class TestTable1:
    def test_rows_cover_all_families(self):
        rows = build_table1(samples_per_family=4)
        names = [row["Botnet"] for row in rows]
        assert names == ["Miner", "Storm", "ZeroAccess v1", "Zeus", "OnionBot"]

    def test_published_columns_match_paper(self):
        rows = {row["Botnet"]: row for row in build_table1(samples_per_family=4)}
        assert rows["Miner"]["Crypto"] == "none"
        assert rows["Storm"]["Crypto"] == "XOR"
        assert rows["ZeroAccess v1"]["Crypto"] == "RC4"
        assert rows["Zeus"]["Crypto"] == "chained XOR"
        assert all(rows[name]["Replay"] == "yes" for name in ("Miner", "Storm", "ZeroAccess v1", "Zeus"))
        assert rows["OnionBot"]["Replay"] == "no"

    def test_onionbot_envelopes_measure_as_uniform_and_constant_size(self):
        rows = {row["Botnet"]: row for row in build_table1(samples_per_family=4)}
        onion = rows["OnionBot"]
        assert onion["LooksUniform"] is True
        assert onion["ConstantSize"] is True
        assert onion["MeanByteEntropy"] > 7.5

    def test_plaintext_families_measure_as_distinguishable(self):
        rows = {row["Botnet"]: row for row in build_table1(samples_per_family=4)}
        assert rows["Miner"]["MeanByteEntropy"] < 6.0
        assert rows["Miner"]["LooksUniform"] is False
        assert rows["Miner"]["ConstantSize"] is False
        assert rows["Storm"]["LooksUniform"] is False

    def test_entropy_ordering_matches_crypto_strength(self):
        """Plaintext < XOR-family < keystream family < OnionBot envelopes."""
        rows = {row["Botnet"]: row for row in build_table1(samples_per_family=6)}
        assert rows["Miner"]["MeanByteEntropy"] <= rows["Zeus"]["MeanByteEntropy"]
        assert rows["Zeus"]["MeanByteEntropy"] <= rows["ZeroAccess v1"]["MeanByteEntropy"]
        assert rows["ZeroAccess v1"]["MeanByteEntropy"] <= rows["OnionBot"]["MeanByteEntropy"]
