"""Tests for OnionBot configuration validation."""

import pytest

from repro.core.config import OnionBotConfig


class TestOnionBotConfig:
    def test_defaults_are_valid(self):
        config = OnionBotConfig()
        assert config.degree == 10
        assert config.d_min <= config.degree <= config.d_max

    def test_paper_defaults_for_each_k(self):
        for degree in (5, 10, 15):
            config = OnionBotConfig.paper_defaults(degree)
            assert config.degree == degree
            assert config.d_min <= degree <= config.d_max

    def test_rejects_degree_below_one(self):
        with pytest.raises(ValueError):
            OnionBotConfig(degree=0)

    def test_rejects_dmax_below_dmin(self):
        with pytest.raises(ValueError):
            OnionBotConfig(d_min=10, d_max=5)

    def test_rejects_degree_outside_bounds(self):
        with pytest.raises(ValueError):
            OnionBotConfig(degree=20, d_min=5, d_max=15)

    def test_rejects_bad_share_probability(self):
        with pytest.raises(ValueError):
            OnionBotConfig(peer_share_probability=1.5)

    def test_rejects_nonpositive_rotation_period(self):
        with pytest.raises(ValueError):
            OnionBotConfig(rotation_period=0)

    def test_rejects_nonpositive_heartbeat(self):
        with pytest.raises(ValueError):
            OnionBotConfig(heartbeat_interval=0)

    def test_rejects_negative_dmin(self):
        with pytest.raises(ValueError):
            OnionBotConfig(d_min=-1)
