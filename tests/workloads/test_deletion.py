"""Tests for deletion schedules."""

import pytest

from repro.workloads.deletion import DeletionSchedule, fraction_checkpoints


class TestFractionCheckpoints:
    def test_paper_checkpoints(self):
        assert fraction_checkpoints(5000, [0.1, 0.2, 0.3]) == [500, 1000, 1500]

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            fraction_checkpoints(100, [1.1])


class TestDeletionSchedule:
    def test_random_schedule_size_and_membership(self):
        nodes = list(range(100))
        schedule = DeletionSchedule.random(nodes, 0.25, seed=1)
        assert len(schedule) == 25
        assert set(schedule.victims) <= set(nodes)

    def test_random_schedule_reproducible(self):
        nodes = list(range(50))
        assert DeletionSchedule.random(nodes, 0.5, seed=3).victims == DeletionSchedule.random(
            nodes, 0.5, seed=3
        ).victims

    def test_full_population_covers_everyone(self):
        nodes = list(range(30))
        schedule = DeletionSchedule.full_population(nodes, seed=1)
        assert sorted(schedule.victims) == nodes

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            DeletionSchedule.random([1, 2, 3], 2.0)

    def test_batches(self):
        schedule = DeletionSchedule(victims=list(range(10)))
        batches = list(schedule.batches(3))
        assert [len(batch) for batch in batches] == [3, 3, 3, 1]
        assert [victim for batch in batches for victim in batch] == list(range(10))

    def test_batches_invalid_size(self):
        with pytest.raises(ValueError):
            list(DeletionSchedule(victims=[1]).batches(0))

    def test_prefix(self):
        schedule = DeletionSchedule(victims=list(range(10)))
        assert schedule.prefix(3) == [0, 1, 2]

    def test_iteration(self):
        schedule = DeletionSchedule(victims=[5, 6])
        assert list(schedule) == [5, 6]
