"""Tests for graph metrics, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.graphs.adjacency import UndirectedGraph
from repro.graphs.generators import k_regular_graph, ring_graph, to_networkx
from repro.graphs.metrics import (
    average_closeness_centrality,
    average_degree_centrality,
    average_shortest_path_length,
    closeness_centrality,
    connected_components,
    degree_centrality,
    degree_histogram,
    diameter,
    eccentricity,
    largest_component_fraction,
    number_connected_components,
    shortest_path_lengths_from,
)


@pytest.fixture
def sample_graph() -> UndirectedGraph:
    """A small irregular graph with a known structure."""
    return UndirectedGraph(edges=[(0, 1), (1, 2), (2, 3), (3, 4), (1, 3), (5, 6)])


class TestShortestPaths:
    def test_bfs_distances(self, sample_graph):
        distances = shortest_path_lengths_from(sample_graph, 0)
        assert distances[0] == 0
        assert distances[1] == 1
        assert distances[3] == 2
        assert distances[4] == 3
        assert 5 not in distances  # other component

    def test_missing_source_raises(self, sample_graph):
        with pytest.raises(Exception):
            shortest_path_lengths_from(sample_graph, 99)

    def test_eccentricity(self, sample_graph):
        assert eccentricity(sample_graph, 0) == 3


class TestCentralityAgainstNetworkx:
    def test_closeness_matches_networkx(self):
        graph = k_regular_graph(60, 4, seed=11)
        nx_graph = to_networkx(graph)
        nx_closeness = nx.closeness_centrality(nx_graph)
        for node in list(graph.nodes())[:10]:
            assert closeness_centrality(graph, node) == pytest.approx(nx_closeness[node])

    def test_closeness_matches_networkx_on_disconnected_graph(self, sample_graph):
        nx_graph = to_networkx(sample_graph)
        nx_closeness = nx.closeness_centrality(nx_graph)
        for node in sample_graph.nodes():
            assert closeness_centrality(sample_graph, node) == pytest.approx(nx_closeness[node])

    def test_degree_centrality_matches_networkx(self, sample_graph):
        nx_values = nx.degree_centrality(to_networkx(sample_graph))
        for node in sample_graph.nodes():
            assert degree_centrality(sample_graph, node) == pytest.approx(nx_values[node])

    def test_average_degree_centrality(self):
        graph = k_regular_graph(50, 6, seed=2)
        assert average_degree_centrality(graph) == pytest.approx(6 / 49)

    def test_average_closeness_sampled_close_to_exact(self):
        graph = k_regular_graph(120, 6, seed=3)
        exact = average_closeness_centrality(graph)
        import random

        sampled = average_closeness_centrality(graph, sample_size=60, rng=random.Random(0))
        assert sampled == pytest.approx(exact, rel=0.1)

    def test_single_node_graph_centralities_are_zero(self):
        graph = UndirectedGraph(nodes=[0])
        assert closeness_centrality(graph, 0) == 0.0
        assert degree_centrality(graph, 0) == 0.0
        assert average_degree_centrality(graph) == 0.0


class TestComponentsAndDiameter:
    def test_connected_components(self, sample_graph):
        components = connected_components(sample_graph)
        assert len(components) == 2
        assert {0, 1, 2, 3, 4} in components
        assert {5, 6} in components
        assert number_connected_components(sample_graph) == 2

    def test_largest_component_fraction(self, sample_graph):
        assert largest_component_fraction(sample_graph) == pytest.approx(5 / 7)

    def test_empty_graph_components(self):
        graph = UndirectedGraph()
        assert number_connected_components(graph) == 0
        assert largest_component_fraction(graph) == 0.0

    def test_diameter_of_ring(self):
        graph = ring_graph(10)
        assert diameter(graph) == 5.0

    def test_diameter_matches_networkx(self):
        graph = k_regular_graph(80, 4, seed=5)
        nx_diameter = nx.diameter(to_networkx(graph))
        assert diameter(graph) == float(nx_diameter)

    def test_diameter_partitioned_graph_uses_largest_component(self, sample_graph):
        assert diameter(sample_graph) == 3.0

    def test_diameter_partitioned_infinite_when_requested(self, sample_graph):
        assert diameter(sample_graph, largest_component_only=False) == float("inf")

    def test_diameter_empty_graph(self):
        assert diameter(UndirectedGraph()) == 0.0

    def test_average_shortest_path_length(self):
        graph = ring_graph(6)
        nx_value = nx.average_shortest_path_length(to_networkx(graph))
        assert average_shortest_path_length(graph) == pytest.approx(nx_value)

    def test_degree_histogram(self, sample_graph):
        histogram = degree_histogram(sample_graph)
        # Degrees: 0->1, 1->3, 2->2, 3->3, 4->1, 5->1, 6->1
        assert histogram == {1: 4, 2: 1, 3: 2}
