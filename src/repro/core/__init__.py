"""Core OnionBot constructions (the paper's primary contribution).

The package implements, as simulation objects:

* :mod:`~repro.core.ddsr` -- the Dynamic Distributed Self-Repairing (DDSR)
  overlay: neighbour-of-neighbour knowledge, the repair step run when a peer
  disappears, degree pruning into ``[d_min, d_max]`` and address forgetting
  (paper section IV-C).  This pure-graph object is what the Figure 4/5/6
  experiments exercise.
* :mod:`~repro.core.addressing` -- periodic ``.onion`` rotation derived from
  the shared per-bot key and the period index (section IV-D).
* :mod:`~repro.core.messaging` -- C&C message formats: directed, broadcast and
  group-keyed commands, the rally-stage key report, fixed-size uniform-looking
  envelopes (sections IV-D, IV-E).
* :mod:`~repro.core.bootstrap` -- the bootstrap strategies of section IV-B and
  the address-space argument for why random probing is infeasible.
* :mod:`~repro.core.lifecycle` -- the bot life-cycle state machine
  (infection, rally, waiting, execution).
* :mod:`~repro.core.node` / :mod:`~repro.core.commander` -- individual bots and
  the botmaster / C&C logic.
* :mod:`~repro.core.rental` -- the botnet-for-rent token scheme (section IV-E).
* :mod:`~repro.core.botnet` -- the full orchestrator wiring bots, the DDSR
  overlay and the simulated Tor network together.

Everything here is a research simulation of the published design: bots are
in-process objects, "infection" is an event in a discrete-event simulator and
all traffic flows through the in-memory Tor model.
"""

from repro.core.config import OnionBotConfig
from repro.core.errors import (
    BotnetError,
    BootstrapError,
    LifecycleError,
    MessageError,
    RentalError,
)
from repro.core.ddsr import DDSROverlay, PruningPolicy, RepairPolicy
from repro.core.addressing import AddressPlan, current_onion_address, onion_schedule
from repro.core.lifecycle import BotStage, LifecycleMachine
from repro.core.messaging import (
    CommandMessage,
    Envelope,
    KeyReport,
    MessageKind,
    build_envelope,
    open_envelope,
)
from repro.core.bootstrap import (
    BootstrapStrategy,
    HardcodedPeerList,
    Hotlist,
    OutOfBandChannel,
    RandomProbingEstimate,
    estimate_random_probe_expected_attempts,
)
from repro.core.node import OnionBotNode
from repro.core.commander import Botmaster
from repro.core.rental import RentalToken, issue_token, verify_rented_command
from repro.core.botnet import BotnetStats, OnionBotnet
from repro.core.failure_detection import FailureDetector, SweepReport
from repro.core.recruitment import RecruitmentCampaign, RecruitmentResult

__all__ = [
    "OnionBotConfig",
    "BotnetError",
    "BootstrapError",
    "LifecycleError",
    "MessageError",
    "RentalError",
    "DDSROverlay",
    "RepairPolicy",
    "PruningPolicy",
    "AddressPlan",
    "current_onion_address",
    "onion_schedule",
    "BotStage",
    "LifecycleMachine",
    "MessageKind",
    "CommandMessage",
    "KeyReport",
    "Envelope",
    "build_envelope",
    "open_envelope",
    "BootstrapStrategy",
    "HardcodedPeerList",
    "Hotlist",
    "OutOfBandChannel",
    "RandomProbingEstimate",
    "estimate_random_probe_expected_attempts",
    "OnionBotNode",
    "Botmaster",
    "RentalToken",
    "issue_token",
    "verify_rented_command",
    "OnionBotnet",
    "BotnetStats",
    "FailureDetector",
    "SweepReport",
    "RecruitmentCampaign",
    "RecruitmentResult",
]
