"""``repro`` -- a defensive research simulator reproducing *OnionBots* (DSN 2015).

The package implements, entirely as an in-process simulation, the systems
described in "OnionBots: Subverting Privacy Infrastructure for Cyber Attacks"
by Sanatinia & Noubir:

* a model of the Tor hidden-service machinery (:mod:`repro.tor`),
* the Dynamic Distributed Self-Repairing overlay and the full OnionBot
  reference design (:mod:`repro.core`),
* the defender actions and the SOAP mitigation (:mod:`repro.adversary`),
* Tor-level mitigations and the attacker's counter-countermeasures, including
  SuperOnionBots (:mod:`repro.defenses`),
* baselines, workloads, and the experiment harness regenerating every table
  and figure of the paper (:mod:`repro.baselines`, :mod:`repro.workloads`,
  :mod:`repro.analysis`).

Nothing here touches a network: there is no real Tor usage, no exploitation
capability and no deployable malware -- the goal, like the paper's, is to let
defenders study the design and evaluate mitigations preemptively.

Quickstart::

    from repro import OnionBotnet, SoapAttack

    net = OnionBotnet(seed=7)
    net.build(40)
    report = net.broadcast_command("report-status")
    print(f"command reached {report.coverage:.0%} of the botnet")

See ``examples/`` for complete walkthroughs and ``benchmarks/`` for the
scripts regenerating the paper's evaluation.
"""

from repro.core import (
    Botmaster,
    BotnetStats,
    DDSROverlay,
    OnionBotConfig,
    OnionBotNode,
    OnionBotnet,
    PruningPolicy,
    RepairPolicy,
)
from repro.adversary import SoapAttack, SoapCampaignResult
from repro.defenses import PowAdmission, RateLimitedAdmission, SuperOnionNetwork
from repro.baselines import NormalOverlay
from repro.sim import Simulator
from repro.tor import TorNetwork, TorNetworkConfig

__version__ = "1.0.0"

__all__ = [
    "OnionBotnet",
    "OnionBotNode",
    "OnionBotConfig",
    "Botmaster",
    "BotnetStats",
    "DDSROverlay",
    "RepairPolicy",
    "PruningPolicy",
    "SoapAttack",
    "SoapCampaignResult",
    "PowAdmission",
    "RateLimitedAdmission",
    "SuperOnionNetwork",
    "NormalOverlay",
    "Simulator",
    "TorNetwork",
    "TorNetworkConfig",
    "__version__",
]
