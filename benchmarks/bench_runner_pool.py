"""Persistent worker pool vs a fresh pool per checkpoint.

The PR 4 sharded path-metric engine built a throwaway process pool (and
re-shipped the CSR arrays) for every checkpoint campaign.  The persistent
pool (:mod:`repro.runner.pool`) pays spin-up once per invocation and
broadcasts only delta-log patches between checkpoints, so a checkpointed
``resilience-at-scale``-style campaign (here: 20 000 nodes, 4 checkpoints,
2 path workers, exact full-population metrics at every checkpoint) saves
the per-checkpoint spin-up + re-ship tax -- a modest but consistent
wall-clock win under ``fork``, and the difference between one
``runner.pool_spinup`` span and one per checkpoint in the telemetry
report.

Both variants are asserted bit-identical to the serial engine before any
timing is believed.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from conftest import emit

from repro.graphs import backend, fast
from repro.graphs.generators import k_regular_graph
from repro.obs import telemetry
from repro.runner.executor import sharded_full_path_metrics
from repro.runner.pool import shutdown_pools

N = 20_000
K = 8
CHECKPOINTS = 4
VICTIMS_PER_CHECKPOINT = 25
WORKERS = 2
SEED = 71


def _campaign(fresh_pool_per_checkpoint: bool):
    """One checkpointed campaign; returns the per-checkpoint metrics."""
    graph = k_regular_graph(N, K, seed=SEED)
    rng = random.Random(5)
    results = []
    with backend.using("fast"):
        for _ in range(CHECKPOINTS):
            for victim in rng.sample(sorted(graph), VICTIMS_PER_CHECKPOINT):
                graph.remove_node(victim)
            if fresh_pool_per_checkpoint:
                shutdown_pools()  # the pre-pool behaviour: spin up anew
            results.append(sharded_full_path_metrics(graph, workers=WORKERS))
    shutdown_pools()
    return results


def _serial_campaign():
    graph = k_regular_graph(N, K, seed=SEED)
    rng = random.Random(5)
    results = []
    with backend.using("fast"):
        for _ in range(CHECKPOINTS):
            for victim in rng.sample(sorted(graph), VICTIMS_PER_CHECKPOINT):
                graph.remove_node(victim)
            results.append(fast.full_path_metrics(graph))
    return results


def test_persistent_pool_campaign(benchmark):
    """Tentpole path: one spin-up, delta patches between checkpoints."""
    with telemetry.collecting() as collector:
        pooled = benchmark.pedantic(
            lambda: _campaign(fresh_pool_per_checkpoint=False),
            rounds=1,
            iterations=1,
        )
    assert pooled == _serial_campaign()  # bit-identical, not just close
    counters = collector.snapshot()["counters"]
    spans = collector.snapshot()["spans"]
    assert spans["runner.pool_spinup"]["count"] == 1
    assert counters["runner.pool.publish_attach"] == 1
    assert counters["runner.pool.publish_patch"] == CHECKPOINTS - 1
    emit(
        "persistent pool telemetry",
        f"spinups=1 attach=1 patches={CHECKPOINTS - 1} "
        f"bytes_shipped={counters['runner.pool.bytes_shipped']}",
    )


def test_fresh_pool_per_checkpoint_baseline(benchmark):
    """Baseline: the pre-pool cost model (spin-up + full ship per checkpoint)."""
    with telemetry.collecting() as collector:
        benchmark.pedantic(
            lambda: _campaign(fresh_pool_per_checkpoint=True),
            rounds=1,
            iterations=1,
        )
    spans = collector.snapshot()["spans"]
    assert spans["runner.pool_spinup"]["count"] == CHECKPOINTS
    emit(
        "fresh-pool baseline telemetry",
        f"spinups={CHECKPOINTS} (one per checkpoint)",
    )
