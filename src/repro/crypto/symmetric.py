"""Simulated symmetric sealing.

OnionBot messages are carried over Tor circuits (already link-encrypted) and
additionally sealed so that relaying bots learn nothing about their content.
The simulator models sealing as a keyed keystream (SHA-256 in counter mode)
plus an HMAC tag.  As with every primitive in :mod:`repro.crypto` this is a
behavioural model for protocol research, not a secure cipher.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

_KEYSTREAM_CONTEXT = b"repro.simulated-keystream"
_TAG_CONTEXT = b"repro.simulated-seal-tag"


class SealError(ValueError):
    """Raised when a sealed box fails authentication on open."""


@dataclass(frozen=True)
class SealedBox:
    """Ciphertext plus authentication tag plus nonce."""

    nonce: bytes
    ciphertext: bytes
    tag: bytes

    def size(self) -> int:
        """Total serialized size in bytes."""
        return len(self.nonce) + len(self.ciphertext) + len(self.tag)


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Deterministic keystream of ``length`` bytes from ``key`` and ``nonce``."""
    blocks: list[bytes] = []
    counter = 0
    while sum(len(block) for block in blocks) < length:
        counter_bytes = counter.to_bytes(8, "big")
        blocks.append(hashlib.sha256(_KEYSTREAM_CONTEXT + key + nonce + counter_bytes).digest())
        counter += 1
    return b"".join(blocks)[:length]


def seal(key: bytes, plaintext: bytes, nonce: bytes) -> SealedBox:
    """Seal ``plaintext`` under ``key`` with caller-provided ``nonce``.

    The caller provides the nonce explicitly (drawn from a named random
    stream) so that simulations remain reproducible.
    """
    if not key:
        raise ValueError("key must be non-empty")
    if len(nonce) < 8:
        raise ValueError("nonce must be at least 8 bytes")
    stream = _keystream(key, nonce, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = hmac.new(key, _TAG_CONTEXT + nonce + ciphertext, hashlib.sha256).digest()
    return SealedBox(nonce=nonce, ciphertext=ciphertext, tag=tag)


def open_sealed(key: bytes, box: SealedBox) -> bytes:
    """Open a :class:`SealedBox`, raising :class:`SealError` on tampering."""
    expected = hmac.new(key, _TAG_CONTEXT + box.nonce + box.ciphertext, hashlib.sha256).digest()
    if not hmac.compare_digest(expected, box.tag):
        raise SealError("sealed box failed authentication")
    stream = _keystream(key, box.nonce, len(box.ciphertext))
    return bytes(c ^ s for c, s in zip(box.ciphertext, stream))


def seal_to_public(public_material: bytes, plaintext: bytes, nonce: bytes) -> SealedBox:
    """Model of public-key encryption to a recipient ("{K_B}_PK_CC").

    The rally-stage report message encrypts the bot key under the botmaster's
    hard-coded public key.  In the simulation the recipient's key material is
    hashed into a symmetric key shared only with the holder of the matching
    keypair (who can recompute it through :func:`open_from_private`).
    """
    derived = hashlib.sha256(b"repro.pk-seal" + public_material).digest()
    return seal(derived, plaintext, nonce)


def open_from_private(private: bytes, public_material: bytes, box: SealedBox) -> bytes:
    """Open a :func:`seal_to_public` box as the keypair owner."""
    # The private key is not needed to derive the symmetric key in this model;
    # requiring it here enforces "only the owner calls this" at the API level.
    if not private:
        raise ValueError("private key material required")
    derived = hashlib.sha256(b"repro.pk-seal" + public_material).digest()
    return open_sealed(derived, box)
