"""Tests for circuits and path selection."""

import random

import pytest

from repro.crypto.keys import KeyPair
from repro.tor.circuit import Circuit, CircuitPurpose, build_path, rendezvous_latency
from repro.tor.consensus import DirectoryAuthority
from repro.tor.relay import Relay


def consensus_entries(count: int):
    authority = DirectoryAuthority()
    for index in range(count):
        authority.register(
            Relay(
                nickname=f"c{index}",
                keypair=KeyPair.from_seed(f"circuit-relay-{index}".encode()),
                joined_at=-30 * 3600.0,
            )
        )
    return authority.publish_consensus(now=0.0).entries


class TestCircuit:
    def test_requires_nonempty_path(self):
        with pytest.raises(ValueError):
            Circuit(path=[], purpose=CircuitPurpose.GENERAL, built_at=0.0)

    def test_length_and_latency(self):
        entries = consensus_entries(3)
        circuit = Circuit(path=entries, purpose=CircuitPurpose.GENERAL, built_at=0.0)
        assert circuit.length == 3
        assert circuit.latency(per_hop=0.1) == pytest.approx(0.3)

    def test_close_is_idempotent(self):
        entries = consensus_entries(3)
        circuit = Circuit(path=entries, purpose=CircuitPurpose.GENERAL, built_at=0.0)
        circuit.close(5.0)
        circuit.close(10.0)
        assert circuit.closed_at == 5.0
        assert not circuit.is_open

    def test_record_cells(self):
        entries = consensus_entries(3)
        circuit = Circuit(path=entries, purpose=CircuitPurpose.GENERAL, built_at=0.0)
        circuit.record_cells(4)
        circuit.record_cells(2)
        assert circuit.cells_sent == 6
        with pytest.raises(ValueError):
            circuit.record_cells(-1)

    def test_contains_relay(self):
        entries = consensus_entries(4)
        circuit = Circuit(path=entries[:3], purpose=CircuitPurpose.GENERAL, built_at=0.0)
        assert circuit.contains_relay(entries[0].fingerprint)
        assert not circuit.contains_relay(entries[3].fingerprint)

    def test_circuit_ids_are_unique(self):
        entries = consensus_entries(3)
        a = Circuit(path=entries, purpose=CircuitPurpose.GENERAL, built_at=0.0)
        b = Circuit(path=entries, purpose=CircuitPurpose.GENERAL, built_at=0.0)
        assert a.circuit_id != b.circuit_id


class TestPathSelection:
    def test_path_has_requested_length_and_distinct_relays(self):
        entries = consensus_entries(10)
        path = build_path(entries, 3, random.Random(0))
        assert len(path) == 3
        assert len({entry.fingerprint for entry in path}) == 3

    def test_not_enough_relays_rejected(self):
        entries = consensus_entries(2)
        with pytest.raises(ValueError):
            build_path(entries, 3, random.Random(0))

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            build_path(consensus_entries(5), 0, random.Random(0))

    def test_rendezvous_latency_sums_both_circuits(self):
        entries = consensus_entries(6)
        client = Circuit(path=entries[:3], purpose=CircuitPurpose.RENDEZVOUS, built_at=0.0)
        service = Circuit(path=entries[3:], purpose=CircuitPurpose.RENDEZVOUS, built_at=0.0)
        assert rendezvous_latency(client, service, per_hop=0.1) == pytest.approx(0.6)
