"""Mitigations, Tor-level defenses, and the attacker's counter-countermeasures.

Two directions live here, mirroring sections VI and VII of the paper:

*Defender-side* (complementing SOAP in :mod:`repro.adversary.soap`):

* :mod:`~repro.defenses.hsdir_takeover` -- HSDir interception: positioning
  crafted relays on the fingerprint ring so they become responsible for a
  bot's descriptors and can deny access to it (section VI-A).
* :mod:`~repro.defenses.tor_level` -- generic Tor-side throttles (CAPTCHA-like
  admission on hidden-service circuits, entry-guard throttling), including the
  collateral damage to legitimate hidden-service users.

*Attacker-side counter-countermeasures* (section VII):

* :mod:`~repro.defenses.pow` -- proof-of-work peering admission that makes
  SOAP clone floods expensive.
* :mod:`~repro.defenses.rate_limit` -- rate-limited peering admission that
  slows clone floods (and, as the paper notes, also slows legitimate repairs).
* :mod:`~repro.defenses.superonion` -- the SuperOnionBot construction
  (Figure 8): each physical host runs ``m`` virtual bots and re-bootstraps any
  virtual bot it detects as soaped via periodic self-probes.
"""

from repro.defenses.hsdir_takeover import HsdirInterception, InterceptionResult
from repro.defenses.tor_level import GuardThrottling, ThrottlingImpact
from repro.defenses.pow import PowAdmission, PowParameters
from repro.defenses.rate_limit import RateLimitedAdmission, RateLimitParameters
from repro.defenses.superonion import (
    SuperOnionHost,
    SuperOnionNetwork,
    SuperOnionSurvivalResult,
)

__all__ = [
    "HsdirInterception",
    "InterceptionResult",
    "GuardThrottling",
    "ThrottlingImpact",
    "PowAdmission",
    "PowParameters",
    "RateLimitedAdmission",
    "RateLimitParameters",
    "SuperOnionHost",
    "SuperOnionNetwork",
    "SuperOnionSurvivalResult",
]
