"""Deterministic simulated keypairs.

A real OnionBot generates an RSA-1024 keypair per hidden service; the first 80
bits of the SHA-1 digest of the public key become the service identifier and
its base32 encoding is the ``.onion`` hostname.  For simulation we only need
identities that are unique, reproducible and linked pub/priv -- the key objects
here are derived from a seed with SHA-256 and carry no real cryptographic
strength (which is the point: the repository must not ship attack-grade key
material, and the experiments never need it).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

_PRIVATE_CONTEXT = b"repro.simulated-private-key"
_PUBLIC_CONTEXT = b"repro.simulated-public-key"


@dataclass(frozen=True)
class PublicKey:
    """A simulated public key: an opaque 32-byte identifier."""

    material: bytes

    def __post_init__(self) -> None:
        if len(self.material) != 32:
            raise ValueError("public key material must be exactly 32 bytes")

    def fingerprint(self, length: int = 20) -> bytes:
        """SHA-1 style fingerprint (truncated digest) of the key material.

        Tor identifies relays and hidden services by (truncations of) the
        SHA-1 digest of their public key; we reproduce that shape here.
        """
        return hashlib.sha1(self.material).digest()[:length]

    def hex(self) -> str:
        """Hex rendering of the key material (used in directory documents)."""
        return self.material.hex()


@dataclass(frozen=True)
class KeyPair:
    """A simulated keypair.  ``private`` must never leave the owning node."""

    private: bytes = field(repr=False)
    public: PublicKey = field()

    @classmethod
    def from_seed(cls, seed: bytes | str) -> "KeyPair":
        """Derive a deterministic keypair from ``seed``.

        The same seed always produces the same keypair, which makes the
        paper's address-rotation scheme (section IV-D) reproducible: the next
        period's key is derived from secrets both the bot and the C&C know.
        """
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        private = hashlib.sha256(_PRIVATE_CONTEXT + seed).digest()
        public = PublicKey(hashlib.sha256(_PUBLIC_CONTEXT + private).digest())
        return cls(private=private, public=public)

    @classmethod
    def generate(cls, entropy: bytes) -> "KeyPair":
        """Generate a keypair from caller-provided entropy bytes."""
        if not entropy:
            raise ValueError("entropy must be non-empty")
        return cls.from_seed(entropy)

    def public_fingerprint(self, length: int = 20) -> bytes:
        """Fingerprint of the public half."""
        return self.public.fingerprint(length)


def fingerprint(key: PublicKey | KeyPair | bytes, length: int = 20) -> bytes:
    """Fingerprint helper accepting keys, keypairs, or raw public bytes."""
    if isinstance(key, KeyPair):
        return key.public.fingerprint(length)
    if isinstance(key, PublicKey):
        return key.fingerprint(length)
    if isinstance(key, (bytes, bytearray)):
        return hashlib.sha1(bytes(key)).digest()[:length]
    raise TypeError(f"cannot fingerprint object of type {type(key)!r}")


def shared_identity(private: bytes, peer_public: PublicKey) -> bytes:
    """A deterministic 'shared secret' between a private key and a public key.

    Models the outcome of a key agreement without implementing one: both the
    bot (who holds ``K_B``) and the botmaster (who learns ``K_B`` via the
    report message) can derive the same value, which the address-rotation
    recipe then feeds into the KDF.
    """
    if not isinstance(peer_public, PublicKey):
        raise TypeError("peer_public must be a PublicKey")
    payload = b"repro.shared-identity" + private + peer_public.material
    return hashlib.sha256(payload).digest()


def key_id(key: PublicKey, prefix: Optional[int] = 8) -> str:
    """Short printable identifier for logs and traces."""
    digest = key.fingerprint().hex()
    return digest[: prefix * 2] if prefix else digest
