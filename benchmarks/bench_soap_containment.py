"""Figure 7 / section VI-B -- SOAP containment of the basic OnionBot.

The paper presents SOAP pictorially (Figure 7): clones progressively replace a
target's peers until it is contained, then the campaign spreads until the
botnet is neutralized.  The benchmark quantifies that process against
k-regular OnionBot overlays: clones spent per bot, campaign length, final
containment fraction, and the state of the benign communication graph.
"""

from __future__ import annotations

import random

from conftest import emit

from repro.adversary.soap import SoapAttack
from repro.analysis.experiments import run_soap_campaign
from repro.analysis.reporting import format_series, render_result_rows
from repro.core.ddsr import DDSROverlay


def test_soap_single_node_containment(benchmark):
    """Figure 7 steps 2-9: containing one bot with low-degree clones."""

    def run():
        overlay = DDSROverlay.k_regular(300, 10, seed=70)
        attack = SoapAttack(rng=random.Random(0))
        target = overlay.nodes()[0]
        return attack.contain_node(overlay, target), overlay

    result, overlay = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Figure 7 — single-node soaping",
        render_result_rows(
            [
                {
                    "contained": result.contained,
                    "clones_used": result.clones_used,
                    "benign_peers_displaced": result.benign_peers_displaced,
                    "final_degree": overlay.degree(result.target),
                }
            ]
        ),
    )
    assert result.contained
    assert result.benign_peers_displaced >= 10


def test_soap_full_campaign_neutralizes_basic_onionbot(benchmark):
    """Section VI-B: the whole botnet is gradually contained and neutralized."""
    result = benchmark.pedantic(
        lambda: run_soap_campaign(n=400, k=10, seed=71), rounds=1, iterations=1
    )
    campaign = result.campaign
    timeline_x = [processed for processed, _ in campaign.timeline]
    timeline_y = [fraction for _, fraction in campaign.timeline]
    emit(
        "SOAP campaign against a 400-bot basic OnionBot",
        render_result_rows(
            [
                {
                    "bots": result.n,
                    "neutralized": campaign.neutralized,
                    "containment_fraction": campaign.containment_fraction,
                    "clones_created": campaign.clones_created,
                    "clones_per_bot": round(campaign.clones_per_bot, 2),
                    "benign_largest_component": result.benign_components["largest_component"],
                }
            ]
        )
        + "\n"
        + format_series("containment fraction vs targets processed", timeline_x, timeline_y),
    )
    assert campaign.neutralized
    assert result.benign_components["nontrivial_components"] == 0


def test_soap_cost_scales_with_botnet_size(benchmark):
    """Defender cost model: clones needed grow linearly with the botnet."""

    def run():
        rows = []
        for n in (100, 200, 400):
            outcome = run_soap_campaign(n=n, k=10, seed=72)
            rows.append(
                {
                    "bots": n,
                    "clones_created": outcome.campaign.clones_created,
                    "clones_per_bot": round(outcome.campaign.clones_per_bot, 2),
                    "neutralized": outcome.campaign.neutralized,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("SOAP cost vs botnet size", render_result_rows(rows))
    assert all(row["neutralized"] for row in rows)
    assert rows[-1]["clones_created"] > rows[0]["clones_created"]
