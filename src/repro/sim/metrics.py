"""Metric collection for experiments.

The experiment harness (``repro.analysis``) records figure series such as
"average closeness centrality after *x* deletions" or "number of connected
components over time".  ``MetricRecorder`` offers two primitives:

* :class:`TimeSeries` -- append-only ``(x, value)`` pairs, where ``x`` is either
  simulated time or an experiment-defined abscissa (e.g. nodes deleted).
* :class:`CounterSet` -- monotonically increasing named counters (messages
  relayed, repairs triggered, clones admitted, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple


@dataclass
class TimeSeries:
    """An append-only series of ``(x, value)`` observations."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, x: float, value: float) -> None:
        """Append one observation."""
        self.points.append((float(x), float(value)))

    def xs(self) -> List[float]:
        """All abscissa values in insertion order."""
        return [x for x, _ in self.points]

    def values(self) -> List[float]:
        """All observed values in insertion order."""
        return [v for _, v in self.points]

    def last(self) -> Optional[Tuple[float, float]]:
        """Most recent observation, or ``None`` if empty."""
        return self.points[-1] if self.points else None

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(self.points)

    def mean(self) -> float:
        """Arithmetic mean of the observed values (0.0 when empty)."""
        if not self.points:
            return 0.0
        return sum(self.values()) / len(self.points)

    def min(self) -> float:
        """Minimum observed value."""
        if not self.points:
            raise ValueError(f"series {self.name!r} is empty")
        return min(self.values())

    def max(self) -> float:
        """Maximum observed value."""
        if not self.points:
            raise ValueError(f"series {self.name!r} is empty")
        return max(self.values())


class CounterSet:
    """A collection of monotonically increasing named counters."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` (>= 0) to counter ``name`` and return the new value."""
        if amount < 0:
            raise ValueError(f"counters are monotonic; got negative amount {amount}")
        self._counters[name] = self._counters.get(name, 0) + amount
        return self._counters[name]

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of every counter."""
        return dict(self._counters)

    def snapshot_into(self, collector, prefix: str = "sim.") -> None:
        """Snapshot every counter into an obs collector (shared vocabulary)."""
        from repro.obs.bridge import counters_into

        counters_into(collector, self._counters, prefix)

    def __contains__(self, name: str) -> bool:
        return name in self._counters


class MetricRecorder:
    """Container for every metric an experiment produces."""

    def __init__(self) -> None:
        self._series: Dict[str, TimeSeries] = {}
        self.counters = CounterSet()

    def series(self, name: str) -> TimeSeries:
        """Return (creating if needed) the time series called ``name``."""
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def record(self, name: str, x: float, value: float) -> None:
        """Append an observation to the series called ``name``."""
        self.series(name).record(x, value)

    def has_series(self, name: str) -> bool:
        """Whether any observation has been recorded under ``name``."""
        return name in self._series

    def series_names(self) -> List[str]:
        """Names of every recorded series, sorted."""
        return sorted(self._series)

    def as_dict(self) -> Dict[str, List[Tuple[float, float]]]:
        """Snapshot of all series as plain lists (JSON-friendly)."""
        return {name: list(series.points) for name, series in self._series.items()}

    def merge(self, other: "MetricRecorder", prefix: str = "") -> None:
        """Copy every series and counter from ``other`` into this recorder."""
        for name, series in other._series.items():
            target = self.series(prefix + name)
            target.points.extend(series.points)
        for name, value in other.counters.as_dict().items():
            self.counters.increment(prefix + name, value)

    def snapshot_into(self, collector, section: str = "sim") -> None:
        """Snapshot counters + series summaries into an obs report section."""
        from repro.obs.bridge import recorder_section

        recorder_section(collector, self, section)


def summarize(values: Iterable[float]) -> Mapping[str, float]:
    """Simple summary statistics used by the reporting layer."""
    data = [float(v) for v in values]
    if not data:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0}
    return {
        "count": len(data),
        "mean": sum(data) / len(data),
        "min": min(data),
        "max": max(data),
    }
