"""Tests for heartbeat-based failure detection and repair."""

import pytest

from repro.core.botnet import OnionBotnet
from repro.core.errors import BotnetError
from repro.core.failure_detection import FailureDetector
from repro.graphs.metrics import number_connected_components


@pytest.fixture
def botnet() -> OnionBotnet:
    net = OnionBotnet(seed=55)
    net.build(14)
    return net


class TestSilentFailure:
    def test_silent_failure_leaves_overlay_stale(self, botnet):
        victim = botnet.active_labels()[0]
        botnet.silent_failure(victim)
        # The bot is gone from Tor, but the overlay still lists it.
        assert victim in botnet.overlay.graph
        assert not botnet.bots[victim].is_active

    def test_silent_failure_requires_active_bot(self, botnet):
        victim = botnet.active_labels()[0]
        botnet.silent_failure(victim)
        with pytest.raises(BotnetError):
            botnet.silent_failure(victim)
        with pytest.raises(BotnetError):
            botnet.silent_failure("ghost")


class TestFailureDetector:
    def test_healthy_botnet_declares_nobody_dead(self, botnet):
        detector = FailureDetector(botnet, suspicion_threshold=2)
        report = detector.sweep()
        assert report.peers_unreachable == 0
        assert report.peers_declared_dead == 0
        assert report.probes_sent > 0

    def test_dead_peer_detected_after_threshold_sweeps(self, botnet):
        victim = botnet.active_labels()[0]
        botnet.silent_failure(victim)
        detector = FailureDetector(botnet, suspicion_threshold=2)

        first = detector.sweep()
        assert first.peers_unreachable > 0
        assert first.peers_declared_dead == 0  # still below the threshold

        second = detector.sweep()
        assert victim in second.dead_labels
        assert victim not in botnet.overlay.graph
        # The survivors healed around the failure.
        assert number_connected_components(botnet.overlay.graph) == 1
        assert botnet.overlay.degree_bounds_satisfied()

    def test_peer_lists_updated_after_detection(self, botnet):
        victim = botnet.active_labels()[0]
        victim_onion = botnet.onion_of(victim)
        botnet.silent_failure(victim)
        detector = FailureDetector(botnet, suspicion_threshold=1)
        detector.sweep()
        for label in botnet.active_labels():
            assert victim_onion not in botnet.bots[label].peer_addresses

    def test_multiple_failures_detected(self, botnet):
        victims = botnet.active_labels()[:3]
        for victim in victims:
            botnet.silent_failure(victim)
        detector = FailureDetector(botnet, suspicion_threshold=1)
        report = detector.sweep()
        assert set(victims) <= set(report.dead_labels)
        assert detector.total_declared_dead >= 3

    def test_commands_propagate_after_detection_and_repair(self, botnet):
        victims = botnet.active_labels()[:3]
        for victim in victims:
            botnet.silent_failure(victim)
        FailureDetector(botnet, suspicion_threshold=1).sweep()
        report = botnet.broadcast_command("report-status")
        assert report.coverage == 1.0

    def test_periodic_registration_runs_sweeps(self, botnet):
        detector = FailureDetector(botnet, suspicion_threshold=1)
        process = detector.run_periodic(interval=100.0)
        botnet.simulator.run_for(350.0)
        assert detector.sweeps_performed >= 3
        process.stop()
