"""Tests for fixed-size cells."""

import pytest

from repro.tor.cells import (
    CELL_SIZE,
    HEADER_SIZE,
    PAYLOAD_PER_CELL,
    Cell,
    CellError,
    cells_required,
    chunk_payload,
    reassemble_cells,
)


class TestChunking:
    def test_single_cell_payload(self):
        cells = chunk_payload(1, b"short message")
        assert len(cells) == 1
        assert cells[0].payload_length == len(b"short message")

    def test_empty_payload_still_emits_one_cell(self):
        cells = chunk_payload(1, b"")
        assert len(cells) == 1
        assert cells[0].payload_length == 0

    def test_multi_cell_payload(self):
        payload = b"x" * (PAYLOAD_PER_CELL * 2 + 10)
        cells = chunk_payload(1, payload)
        assert len(cells) == 3
        assert cells[-1].payload_length == 10

    def test_all_cells_have_identical_wire_size(self):
        payload = b"y" * (PAYLOAD_PER_CELL + 1)
        cells = chunk_payload(1, payload)
        assert {cell.size for cell in cells} == {CELL_SIZE}

    def test_cell_size_constant(self):
        assert CELL_SIZE == 512
        assert PAYLOAD_PER_CELL == CELL_SIZE - HEADER_SIZE

    def test_negative_circuit_id_rejected(self):
        with pytest.raises(CellError):
            chunk_payload(-1, b"data")

    def test_sequence_numbers_are_consecutive(self):
        cells = chunk_payload(7, b"z" * (PAYLOAD_PER_CELL * 3))
        assert [cell.sequence for cell in cells] == [0, 1, 2]


class TestReassembly:
    def test_roundtrip(self):
        payload = bytes(range(256)) * 7
        cells = chunk_payload(3, payload)
        assert reassemble_cells(cells) == payload

    def test_roundtrip_exact_multiple(self):
        payload = b"a" * (PAYLOAD_PER_CELL * 2)
        assert reassemble_cells(chunk_payload(1, payload)) == payload

    def test_empty_sequence_rejected(self):
        with pytest.raises(CellError):
            reassemble_cells([])

    def test_mixed_circuits_rejected(self):
        cells = chunk_payload(1, b"abc") + chunk_payload(2, b"def")
        with pytest.raises(CellError):
            reassemble_cells(cells)

    def test_out_of_order_rejected(self):
        cells = chunk_payload(1, b"x" * (PAYLOAD_PER_CELL * 2))
        with pytest.raises(CellError):
            reassemble_cells(list(reversed(cells)))


class TestCellValidation:
    def test_unpadded_payload_rejected(self):
        with pytest.raises(CellError):
            Cell(circuit_id=1, sequence=0, payload=b"short", payload_length=5)

    def test_invalid_payload_length_rejected(self):
        with pytest.raises(CellError):
            Cell(
                circuit_id=1,
                sequence=0,
                payload=b"\x00" * PAYLOAD_PER_CELL,
                payload_length=PAYLOAD_PER_CELL + 1,
            )

    def test_cells_required(self):
        assert cells_required(0) == 1
        assert cells_required(1) == 1
        assert cells_required(PAYLOAD_PER_CELL) == 1
        assert cells_required(PAYLOAD_PER_CELL + 1) == 2
        with pytest.raises(CellError):
            cells_required(-1)
