"""Tests for bootstrap (rally) strategies."""

import random

import pytest

from repro.core.bootstrap import (
    ONION_ADDRESS_SPACE,
    CompositeBootstrap,
    HardcodedPeerList,
    Hotlist,
    OutOfBandChannel,
    RandomProbingEstimate,
    estimate_random_probe_expected_attempts,
)
from repro.core.errors import BootstrapError


PEERS = [f"peer{i:02d}aaaaaaaaaaaa.onion" for i in range(10)]


class TestHardcodedPeerList:
    def test_candidates_exclude_requester(self):
        strategy = HardcodedPeerList(peers=list(PEERS))
        candidates = strategy.candidate_peers(PEERS[0], 20, random.Random(0))
        assert PEERS[0] not in candidates
        assert len(candidates) == 9

    def test_candidates_limited_to_count(self):
        strategy = HardcodedPeerList(peers=list(PEERS))
        assert len(strategy.candidate_peers("other", 3, random.Random(0))) == 3

    def test_child_list_is_probabilistic_subset(self):
        strategy = HardcodedPeerList(peers=list(PEERS), share_probability=0.5)
        child = strategy.child_list(random.Random(1))
        assert set(child.peers) <= set(PEERS)
        assert len(child.peers) >= 1

    def test_child_list_with_zero_probability_keeps_one_peer(self):
        strategy = HardcodedPeerList(peers=list(PEERS), share_probability=0.0)
        child = strategy.child_list(random.Random(1))
        assert len(child.peers) == 1

    def test_invalid_probability_rejected(self):
        with pytest.raises(BootstrapError):
            HardcodedPeerList(peers=[], share_probability=2.0)

    def test_update_and_forget(self):
        strategy = HardcodedPeerList(peers=list(PEERS[:2]))
        strategy.update([PEERS[5], PEERS[0]])
        assert PEERS[5] in strategy.peers
        assert strategy.peers.count(PEERS[0]) == 1
        strategy.forget([PEERS[0]])
        assert PEERS[0] not in strategy.peers

    def test_empty_list_returns_nothing(self):
        assert HardcodedPeerList(peers=[]).candidate_peers("x", 5, random.Random(0)) == []


class TestHotlist:
    def test_query_merges_server_subsets(self):
        hotlist = Hotlist(servers_per_bot=2)
        hotlist.add_server("cache-a", PEERS[:4])
        hotlist.add_server("cache-b", PEERS[4:8])
        candidates = hotlist.candidate_peers("requester", 20, random.Random(0))
        assert set(candidates) <= set(PEERS[:8])
        assert len(candidates) >= 4

    def test_publish_deduplicates(self):
        hotlist = Hotlist()
        hotlist.publish("cache-a", PEERS[0])
        hotlist.publish("cache-a", PEERS[0])
        assert hotlist.servers["cache-a"] == [PEERS[0]]

    def test_empty_hotlist(self):
        assert Hotlist().candidate_peers("x", 5, random.Random(0)) == []

    def test_seizing_one_server_reveals_only_its_subset(self):
        hotlist = Hotlist()
        hotlist.add_server("cache-a", PEERS[:2])
        hotlist.add_server("cache-b", PEERS[2:10])
        assert hotlist.exposure_if_server_seized("cache-a") == pytest.approx(0.2)
        assert hotlist.exposure_if_server_seized("missing") == 0.0


class TestOutOfBand:
    def test_latest_post_is_served(self):
        channel = OutOfBandChannel()
        channel.publish(PEERS[:3])
        channel.publish(PEERS[3:6])
        assert channel.latest() == PEERS[3:6]
        candidates = channel.candidate_peers("x", 10, random.Random(0))
        assert set(candidates) == set(PEERS[3:6])

    def test_empty_channel(self):
        assert OutOfBandChannel().candidate_peers("x", 5, random.Random(0)) == []


class TestRandomProbing:
    def test_address_space_is_32_to_the_16(self):
        assert ONION_ADDRESS_SPACE == 32 ** 16

    def test_expected_probes_scale_inversely_with_population(self):
        small = RandomProbingEstimate(population=1000)
        large = RandomProbingEstimate(population=1_000_000)
        assert small.expected_probes > large.expected_probes
        assert small.expected_probes == pytest.approx(32 ** 16 / 1000)

    def test_probing_is_infeasible_even_for_huge_botnets(self):
        """Even a million-bot population takes ~38 million years at 1k probes/s."""
        estimate = RandomProbingEstimate(population=1_000_000, probes_per_second=1000.0)
        assert estimate.expected_years > 1e6

    def test_zero_population_is_infinite(self):
        assert RandomProbingEstimate(population=0).expected_probes == float("inf")

    def test_helper_function(self):
        assert estimate_random_probe_expected_attempts(100) == pytest.approx(32 ** 16 / 100)


class TestComposite:
    def test_falls_back_when_primary_short(self):
        primary = HardcodedPeerList(peers=PEERS[:2])
        fallback = Hotlist()
        fallback.add_server("cache", PEERS[2:8])
        composite = CompositeBootstrap(primary, fallback)
        candidates = composite.candidate_peers("requester", 5, random.Random(0))
        assert len(candidates) == 5
        assert set(PEERS[:2]) <= set(candidates)

    def test_no_fallback_needed_when_primary_sufficient(self):
        composite = CompositeBootstrap(HardcodedPeerList(peers=list(PEERS)))
        assert len(composite.candidate_peers("x", 4, random.Random(0))) == 4

    def test_describe_mentions_both(self):
        composite = CompositeBootstrap(HardcodedPeerList(peers=[]), Hotlist())
        assert "HardcodedPeerList" in composite.describe()
        assert "Hotlist" in composite.describe()
