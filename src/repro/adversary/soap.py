"""SOAP -- the Sybil Onion Attack Protocol (paper section VI-B, Figure 7).

SOAP is the paper's mitigation against the basic OnionBot: it turns the
botnet's own stealth features (peers only know each other's rotating onion
addresses, anyone can host many onion services on one machine) against it.

Per-node containment follows Figure 7's steps: a compromised peer (or any
defender node that learned the target's address) spins up clones; each clone
requests peering with the target while announcing a small random degree; the
target accepts, finds itself over its degree bound, and -- following the DDSR
pruning rule -- drops its *highest-degree* peer, which is always a real bot
rather than a low-degree clone.  Repeating this, the target's peer list fills
up with clones until it has no benign neighbours left: it is **contained**
(still running, but every message it sends or receives passes through the
defender).  The campaign then spreads to the neighbours learned along the way
until the whole botnet is neutralized.

The implementation works directly on a :class:`~repro.core.ddsr.DDSROverlay`
so it can be evaluated at the same scales as the resilience experiments, and
it accepts an optional *admission policy* (see :mod:`repro.defenses.pow` and
:mod:`repro.defenses.rate_limit`) so the counter-countermeasures of section
VII-A can be quantified: the policy can reject clone peering requests or
charge them work/delay, which the result objects account for.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.ddsr import DDSROverlay

NodeId = Hashable

try:  # numpy is optional repo-wide; the campaign only uses flat flag arrays.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

#: Prefix of every clone identifier created by the attack.
CLONE_PREFIX = "soap-clone-"


def _flag_array(size: int):
    """A zeroed id-indexed flag array (numpy bool when available)."""
    if _np is not None:
        return _np.zeros(size, dtype=bool)
    return bytearray(size)


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of asking a target bot to accept a new peer."""

    accepted: bool
    work_required: float = 0.0
    delay_seconds: float = 0.0


#: An admission policy decides whether a peering request is accepted and what
#: it costs.  ``policy(target, requester, overlay)`` -> :class:`AdmissionDecision`.
AdmissionPolicy = Callable[[NodeId, NodeId, DDSROverlay], AdmissionDecision]


def open_admission(_target: NodeId, _requester: NodeId, _overlay: DDSROverlay) -> AdmissionDecision:
    """The basic OnionBot's policy: accept every peering request for free."""
    return AdmissionDecision(accepted=True)


def is_clone(node: NodeId) -> bool:
    """Whether a node identifier was minted by the SOAP attack."""
    return isinstance(node, str) and node.startswith(CLONE_PREFIX)


@dataclass
class SoapNodeResult:
    """Outcome of containing a single target bot."""

    target: NodeId
    contained: bool
    clones_used: int
    peering_requests: int
    requests_rejected: int
    benign_peers_displaced: int
    work_spent: float
    time_spent: float
    learned_addresses: Set[NodeId] = field(default_factory=set)


@dataclass
class SoapCampaignResult:
    """Outcome of a full SOAP campaign against a botnet overlay."""

    total_benign: int
    contained: Set[NodeId]
    clones_created: int
    peering_requests: int
    requests_rejected: int
    work_spent: float
    time_spent: float
    #: ``(targets processed, fraction of benign bots contained)`` checkpoints.
    timeline: List[Tuple[int, float]]
    per_node: List[SoapNodeResult] = field(default_factory=list)

    @property
    def containment_fraction(self) -> float:
        """Fraction of the original benign population that ended up contained."""
        if self.total_benign == 0:
            return 0.0
        return len(self.contained) / self.total_benign

    @property
    def neutralized(self) -> bool:
        """Whether every benign bot was contained (the botnet is neutralized)."""
        return self.total_benign > 0 and len(self.contained) >= self.total_benign

    @property
    def clones_per_bot(self) -> float:
        """Average number of clones spent per contained bot."""
        if not self.contained:
            return 0.0
        return self.clones_created / len(self.contained)


class SoapAttack:
    """Runs SOAP against a DDSR overlay.

    Parameters
    ----------
    rng:
        Randomness source (declared clone degrees, tie-breaks).
    admission:
        The target bots' peering-admission policy; defaults to the basic
        OnionBot's open admission.  Defense policies (PoW, rate limiting) come
        from :mod:`repro.defenses`.
    work_budget / time_budget:
        Optional caps on the total proof-of-work and waiting time the defender
        is willing to spend; the campaign stops when either is exhausted.
    max_clones_per_node:
        Safety valve so a single stubborn target cannot absorb the whole run.
    """

    def __init__(
        self,
        *,
        rng: Optional[random.Random] = None,
        admission: AdmissionPolicy = open_admission,
        work_budget: Optional[float] = None,
        time_budget: Optional[float] = None,
        max_clones_per_node: int = 200,
    ) -> None:
        self.rng = rng if rng is not None else random.Random(0)
        self.admission = admission
        self.work_budget = work_budget
        self.time_budget = time_budget
        self.max_clones_per_node = max_clones_per_node
        self._clone_counter = itertools.count(1)
        self.work_spent = 0.0
        self.time_spent = 0.0
        #: Memoised clone-ness per node id seen by this attack.  Campaigns
        #: test clone-ness on every peer of every target (millions of string
        #: prefix checks at 20k+ nodes); ids never change kind, so one dict
        #: lookup replaces the ``startswith`` scan after the first sighting.
        self._clone_cache: Dict[NodeId, bool] = {}

    # ------------------------------------------------------------------
    # Per-node containment (Figure 7 steps 2-9)
    # ------------------------------------------------------------------
    def _new_clone(self) -> str:
        return f"{CLONE_PREFIX}{next(self._clone_counter):06d}"

    def _is_clone(self, node: NodeId) -> bool:
        cached = self._clone_cache.get(node)
        if cached is None:
            cached = is_clone(node)
            self._clone_cache[node] = cached
        return cached

    def _benign_peers(self, overlay: DDSROverlay, node: NodeId) -> Set[NodeId]:
        cache = self._clone_cache
        result = set()
        for peer in overlay.peers(node):
            flag = cache.get(peer)
            if flag is None:
                flag = is_clone(peer)
                cache[peer] = flag
            if not flag:
                result.add(peer)
        return result

    def _budget_exhausted(self) -> bool:
        if self.work_budget is not None and self.work_spent >= self.work_budget:
            return True
        if self.time_budget is not None and self.time_spent >= self.time_budget:
            return True
        return False

    def contain_node(self, overlay: DDSROverlay, target: NodeId) -> SoapNodeResult:
        """Surround one bot with clones until it has no benign peers left.

        The loop keeps an incremental view of the target's benign peer set:
        the only events that can shrink it are the pruning victims reported
        by :meth:`~repro.core.ddsr.DDSROverlay.enforce_degree_bound_collect`,
        so the per-clone full peer-list rescans of the straightforward
        implementation (see :class:`ReferenceSoapAttack`) are unnecessary.  A
        mutation-stamp check guards against exotic admission policies that
        mutate the overlay; results and rng consumption are bit-identical to
        the reference either way.
        """
        if target not in overlay.graph:
            return SoapNodeResult(
                target=target,
                contained=False,
                clones_used=0,
                peering_requests=0,
                requests_rejected=0,
                benign_peers_displaced=0,
                work_spent=0.0,
                time_spent=0.0,
            )
        from repro.core.ddsr import PruningPolicy

        graph = overlay.graph
        adjacency = graph._adjacency
        clones_used = 0
        requests = 0
        rejected = 0
        displaced = 0
        node_work = 0.0
        node_time = 0.0
        # Give up on a target once twice the clone budget in peering requests
        # has been burned -- admission policies that keep rejecting (PoW above
        # the work budget, rate limits above the patience threshold) stall the
        # attack on this node rather than letting it retry forever.
        max_requests = self.max_clones_per_node * 2
        admission = self.admission
        # The basic OnionBot's open admission accepts everything for free and
        # never touches the overlay, so the whole decision/accounting/stamp
        # dance reduces to nothing (adding 0.0 work is an identity).
        open_policy = admission is open_admission
        budgeted = self.work_budget is not None or self.time_budget is not None
        config = overlay.config
        stats = overlay.stats
        pruning_policy = config.pruning_policy
        # For the degree-driven pruning policies the victim can be selected
        # from degree buckets built once per target: during one containment
        # the only degree changes in the target's neighbourhood are the clone
        # insertions (always degree 1) and the prunes themselves (the victim
        # leaves the peer set), so every real peer's degree is frozen while
        # it remains a peer.  Tie-breaks are repr-sorted before the rng draw,
        # so candidate collection order is irrelevant -- decisions, stats and
        # rng consumption match the DDSR pruner's exactly.  The
        # order-sensitive RANDOM policy keeps the general path.
        inline_prune = pruning_policy in (
            PruningPolicy.HIGHEST_DEGREE,
            PruningPolicy.LOWEST_DEGREE,
        )
        highest = pruning_policy is PruningPolicy.HIGHEST_DEGREE
        d_max = config.d_max
        buckets: Dict[int, List[NodeId]] = {}
        peer_count = 0
        low = high = 0

        def build_buckets() -> None:
            nonlocal peer_count, low, high
            buckets.clear()
            peer_count = 0
            for peer in adjacency[target]:
                peer_count += 1
                degree = len(adjacency[peer])
                bucket = buckets.get(degree)
                if bucket is None:
                    buckets[degree] = [peer]
                else:
                    bucket.append(peer)
            low = min(buckets) if buckets else 0
            high = max(buckets) if buckets else 0

        # One pass over the (order-defining) peer-list copy builds both the
        # benign view and, when the pruning policy allows it, the degree
        # buckets -- bucket order is irrelevant (ties are repr-sorted), so
        # sharing the iteration with the reference's copy scan is safe.
        clone_cache = self._clone_cache
        learned: Set[NodeId] = set()
        for peer in overlay.peers(target):
            flag = clone_cache.get(peer)
            if flag is None:
                flag = is_clone(peer)
                clone_cache[peer] = flag
            if not flag:
                learned.add(peer)
            if inline_prune:
                peer_count += 1
                degree = len(adjacency[peer])
                bucket = buckets.get(degree)
                if bucket is None:
                    buckets[degree] = [peer]
                else:
                    bucket.append(peer)
        if inline_prune and buckets:
            low = min(buckets)
            high = max(buckets)
        benign = set(learned)

        clone_counter = self._clone_counter
        forgetting = config.forgetting_enabled
        rng_choice = overlay.rng.choice
        max_clones = self.max_clones_per_node

        while benign and clones_used < max_clones:
            if (budgeted and self._budget_exhausted()) or requests >= max_requests:
                break
            # Inline of ``self._new_clone()`` -- a per-clone method call is
            # measurable at campaign scale.  Must stay in lockstep with
            # ``_new_clone``; ``test_inline_clone_minting_matches_new_clone``
            # pins the two formats together.
            clone = f"{CLONE_PREFIX}{next(clone_counter):06d}"
            requests += 1
            if not open_policy:
                stamp = graph.mutation_stamp
                decision = admission(target, clone, overlay)
                node_work += decision.work_required
                node_time += decision.delay_seconds
                self.work_spent += decision.work_required
                self.time_spent += decision.delay_seconds
                if graph.mutation_stamp != stamp:
                    benign = self._benign_peers(overlay, target)
                    if inline_prune:
                        build_buckets()
                if not decision.accepted:
                    rejected += 1
                    continue
            graph.add_leaf(clone, target)
            clones_used += 1
            # The target applies its normal DDSR pruning once over its bound;
            # the clone's (graph) degree of 1 matches its small announced
            # degree, so pruning evicts a real, higher-degree peer instead.
            if inline_prune:
                bucket = buckets.get(1)
                if bucket is None:
                    buckets[1] = [clone]
                else:
                    bucket.append(clone)
                peer_count += 1
                low = 1 if peer_count == 1 or low > 1 else low
                high = 1 if high < 1 else high
                while peer_count > d_max:
                    # Walk the degree buckets toward the policy's extreme.
                    if highest:
                        while not buckets.get(high):
                            high -= 1
                        extreme = high
                    else:
                        while not buckets.get(low):
                            low += 1
                        extreme = low
                    candidates = buckets[extreme]
                    if len(candidates) == 1:
                        victim = candidates[0]
                        del buckets[extreme]
                    else:
                        victim = rng_choice(sorted(candidates, key=repr))
                        candidates.remove(victim)
                    graph.remove_edge(target, victim)
                    peer_count -= 1
                    stats.prune_operations += 1
                    stats.prune_edges_removed += 1
                    if forgetting:
                        stats.addresses_forgotten += 1
                    if victim in benign:
                        benign.discard(victim)
                        displaced += 1
            else:
                pruned = overlay.enforce_degree_bound_collect(target)
                for victim in pruned:
                    if victim in benign:
                        benign.discard(victim)
                        displaced += 1

        contained = not benign and target in overlay.graph
        return SoapNodeResult(
            target=target,
            contained=contained,
            clones_used=clones_used,
            peering_requests=requests,
            requests_rejected=rejected,
            benign_peers_displaced=displaced,
            work_spent=node_work,
            time_spent=node_time,
            learned_addresses=learned,
        )

    # ------------------------------------------------------------------
    # Campaign (spreading containment through the whole botnet)
    # ------------------------------------------------------------------
    def run_campaign(
        self,
        overlay: DDSROverlay,
        initial_compromised: Iterable[NodeId],
        *,
        max_targets: Optional[int] = None,
    ) -> SoapCampaignResult:
        """Contain the whole botnet starting from a set of compromised bots.

        ``initial_compromised`` are bots the defender already controls (via
        honeypots or host cleanup); their peer lists seed the list of known
        addresses.  The campaign processes known-but-uncontained bots in FIFO
        order (a deque, not a list -- popping the head of a list is O(n) and
        turns long campaigns quadratic), learning new addresses from each
        target's peer list as it is attacked, until no reachable benign bot
        remains (or the optional ``max_targets`` / work / time budgets run
        out).

        Per-target bookkeeping is batched over the benign population: node
        ids are interned to dense integer indices once, and the contained /
        known sets become flat id-indexed flag arrays instead of hashed sets
        of arbitrary ids.  The result object is bit-identical to
        :class:`ReferenceSoapAttack`'s.
        """
        is_clone_memo = self._is_clone
        benign_population = [node for node in overlay.nodes() if not is_clone_memo(node)]
        total_benign = len(benign_population)
        position = {node: index for index, node in enumerate(benign_population)}
        contained_flags = _flag_array(total_benign)
        known_flags = _flag_array(total_benign)
        contained_count = 0
        # Nodes outside the campaign-start population (possible only if an
        # admission policy grows the overlay mid-run) fall back to sets.
        extra_contained: Set[NodeId] = set()
        extra_known: Set[NodeId] = set()

        queue: "deque[NodeId]" = deque()
        results: List[SoapNodeResult] = []
        timeline: List[Tuple[int, float]] = []
        clones_created = 0
        requests = 0
        rejected = 0

        def mark_contained(node: NodeId) -> bool:
            nonlocal contained_count
            index = position.get(node)
            if index is not None:
                if contained_flags[index]:
                    return False
                contained_flags[index] = True
            else:
                if node in extra_contained:
                    return False
                extra_contained.add(node)
            contained_count += 1
            return True

        def learn(node: NodeId) -> None:
            index = position.get(node)
            if index is not None:
                if not known_flags[index]:
                    known_flags[index] = True
                    queue.append(node)
            elif node not in extra_known and not is_clone_memo(node):
                extra_known.add(node)
                queue.append(node)

        for compromised in initial_compromised:
            if compromised not in overlay.graph or is_clone_memo(compromised):
                continue
            # A compromised bot is already under defender control: count it as
            # contained and learn its peers.
            mark_contained(compromised)
            index = position.get(compromised)
            if index is not None:
                known_flags[index] = True
            else:
                extra_known.add(compromised)
            for peer in self._benign_peers(overlay, compromised):
                learn(peer)

        processed = 0
        position_get = position.get
        graph = overlay.graph
        while queue:
            if max_targets is not None and processed >= max_targets:
                break
            if self._budget_exhausted():
                break
            target = queue.popleft()
            index = position_get(target)
            if index is not None:
                if contained_flags[index]:
                    continue
            elif target in extra_contained:
                continue
            if target not in graph:
                continue
            result = self.contain_node(overlay, target)
            processed += 1
            results.append(result)
            clones_created += result.clones_used
            requests += result.peering_requests
            rejected += result.requests_rejected
            if result.contained:
                mark_contained(target)
            for peer in result.learned_addresses:
                learn(peer)
            fraction = contained_count / total_benign if total_benign else 0.0
            timeline.append((processed, fraction))

        contained = {
            node
            for index, node in enumerate(benign_population)
            if contained_flags[index]
        }
        contained |= extra_contained
        return SoapCampaignResult(
            total_benign=total_benign,
            contained=contained,
            clones_created=clones_created,
            peering_requests=requests,
            requests_rejected=rejected,
            work_spent=self.work_spent,
            time_spent=self.time_spent,
            timeline=timeline,
            per_node=results,
        )

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    @staticmethod
    def benign_subgraph_components(overlay: DDSROverlay) -> Dict[str, int]:
        """Component structure of the benign-to-benign communication graph.

        Contained bots can only talk to clones, so once the campaign is done
        the benign subgraph induced on *uncontained* communication paths tells
        the defender whether the botnet is still able to coordinate.

        Routed through :func:`repro.graphs.backend.induced_component_summary`:
        on the fast backend a compact CSR is built directly on the benign
        node set -- a post-campaign overlay holds several clones per bot, so
        materialising the benign subgraph (or even a CSR of the full graph)
        would be an order of magnitude more work than the answer needs --
        while the reference path keeps the original subgraph-plus-BFS
        computation.  Both return identical counts.
        """
        from repro.graphs.backend import induced_component_summary

        benign_nodes = [node for node in overlay.nodes() if not is_clone(node)]
        surviving, components, largest, isolated = induced_component_summary(
            overlay.graph, benign_nodes
        )
        return {
            "benign_nodes": surviving,
            "components": components,
            "nontrivial_components": components - isolated,
            "largest_component": largest,
        }


class ReferenceSoapAttack(SoapAttack):
    """The straightforward SOAP implementation, kept as a differential oracle.

    ``SoapAttack`` batches its bookkeeping (incremental benign-peer views fed
    by pruning victims, a deque FIFO, id-indexed flag arrays); this subclass
    preserves the original readable loops end to end -- full peer-list
    rescans around every clone, Python sets, ``list.pop(0)``, and the
    dict-materialising pruning-victim selection -- so tests can assert the
    two produce **identical** :class:`SoapCampaignResult` objects (same rng
    consumption included) and benchmarks can quantify the speedup.  Do not
    use it for large campaigns: the FIFO alone is O(n^2).
    """

    def _benign_peers(self, overlay: DDSROverlay, node: NodeId) -> Set[NodeId]:
        return {peer for peer in overlay.peers(node) if not is_clone(peer)}

    @staticmethod
    def _enforce_degree_bound_original(overlay: DDSROverlay, node: NodeId) -> int:
        """The pre-optimization pruning loop, decision-for-decision.

        Consumes ``overlay.rng`` and updates ``overlay.stats`` exactly like
        :meth:`DDSROverlay.enforce_degree_bound` -- the selection logic is the
        original dict-building one, which reaches the same victims (ties are
        normalised by the ``repr`` sort before the rng draw).
        """
        from repro.core.ddsr import PruningPolicy

        graph = overlay.graph
        config = overlay.config
        if config.pruning_policy is PruningPolicy.NONE:
            return 0
        removed = 0
        while graph.degree(node) > config.d_max:
            peers = list(graph.neighbors(node))
            if not peers:
                break
            policy = config.pruning_policy
            if policy is PruningPolicy.RANDOM:
                victim = overlay.rng.choice(peers)
            else:
                degrees = {peer: graph.degree(peer) for peer in peers}
                if policy is PruningPolicy.HIGHEST_DEGREE:
                    extreme = max(degrees.values())
                else:  # LOWEST_DEGREE
                    extreme = min(degrees.values())
                candidates = [
                    peer for peer, degree in degrees.items() if degree == extreme
                ]
                if len(candidates) == 1:
                    victim = candidates[0]
                else:
                    victim = overlay.rng.choice(sorted(candidates, key=repr))
            graph.remove_edge(node, victim)
            removed += 1
            overlay.stats.prune_operations += 1
            overlay.stats.prune_edges_removed += 1
            if config.forgetting_enabled:
                overlay.stats.addresses_forgotten += 1
        return removed

    def contain_node(self, overlay: DDSROverlay, target: NodeId) -> SoapNodeResult:
        """Original per-node containment: rescan benign peers every step."""
        if target not in overlay.graph:
            return SoapNodeResult(
                target=target,
                contained=False,
                clones_used=0,
                peering_requests=0,
                requests_rejected=0,
                benign_peers_displaced=0,
                work_spent=0.0,
                time_spent=0.0,
            )
        learned = self._benign_peers(overlay, target)
        clones_used = 0
        requests = 0
        rejected = 0
        displaced = 0
        node_work = 0.0
        node_time = 0.0
        max_requests = self.max_clones_per_node * 2

        while self._benign_peers(overlay, target) and clones_used < self.max_clones_per_node:
            if self._budget_exhausted() or requests >= max_requests:
                break
            clone = self._new_clone()
            requests += 1
            decision = self.admission(target, clone, overlay)
            node_work += decision.work_required
            node_time += decision.delay_seconds
            self.work_spent += decision.work_required
            self.time_spent += decision.delay_seconds
            if not decision.accepted:
                rejected += 1
                continue
            benign_before = len(self._benign_peers(overlay, target))
            overlay.graph.add_node(clone)
            overlay.graph.add_edge(clone, target)
            clones_used += 1
            self._enforce_degree_bound_original(overlay, target)
            benign_after = len(self._benign_peers(overlay, target))
            displaced += max(0, benign_before - benign_after)

        contained = not self._benign_peers(overlay, target) and target in overlay.graph
        return SoapNodeResult(
            target=target,
            contained=contained,
            clones_used=clones_used,
            peering_requests=requests,
            requests_rejected=rejected,
            benign_peers_displaced=displaced,
            work_spent=node_work,
            time_spent=node_time,
            learned_addresses=learned,
        )

    def run_campaign(
        self,
        overlay: DDSROverlay,
        initial_compromised: Iterable[NodeId],
        *,
        max_targets: Optional[int] = None,
    ) -> SoapCampaignResult:
        """Original campaign loop: Python sets and a list-based FIFO."""
        benign_population = {node for node in overlay.nodes() if not is_clone(node)}
        total_benign = len(benign_population)

        contained: Set[NodeId] = set()
        known: Set[NodeId] = set()
        queue: List[NodeId] = []
        results: List[SoapNodeResult] = []
        timeline: List[Tuple[int, float]] = []
        clones_created = 0
        requests = 0
        rejected = 0

        for compromised in initial_compromised:
            if compromised not in overlay.graph or is_clone(compromised):
                continue
            contained.add(compromised)
            known.add(compromised)
            for peer in self._benign_peers(overlay, compromised):
                if peer not in known:
                    known.add(peer)
                    queue.append(peer)

        processed = 0
        while queue:
            if max_targets is not None and processed >= max_targets:
                break
            if self._budget_exhausted():
                break
            target = queue.pop(0)
            if target in contained or target not in overlay.graph:
                continue
            result = self.contain_node(overlay, target)
            processed += 1
            results.append(result)
            clones_created += result.clones_used
            requests += result.peering_requests
            rejected += result.requests_rejected
            if result.contained:
                contained.add(target)
            for peer in result.learned_addresses:
                if peer not in known and not is_clone(peer):
                    known.add(peer)
                    queue.append(peer)
            fraction = len(contained) / total_benign if total_benign else 0.0
            timeline.append((processed, fraction))

        return SoapCampaignResult(
            total_benign=total_benign,
            contained=contained,
            clones_created=clones_created,
            peering_requests=requests,
            requests_rejected=rejected,
            work_spent=self.work_spent,
            time_spent=self.time_spent,
            timeline=timeline,
            per_node=results,
        )
