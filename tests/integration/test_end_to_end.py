"""End-to-end integration tests across every subsystem."""

import random

import pytest

from repro.adversary.hijack import HijackAttempt
from repro.adversary.honeypot import HoneypotOperator
from repro.adversary.soap import SoapAttack, is_clone
from repro.core.botnet import OnionBotnet
from repro.core.config import OnionBotConfig
from repro.core.rental import issue_token, sign_rented_command
from repro.core.messaging import CommandMessage, MessageKind
from repro.crypto.keys import KeyPair


class TestBotnetLifecycleEndToEnd:
    def test_build_command_takedown_rotate_command(self):
        """The full life of a small OnionBot deployment, through the Tor model."""
        net = OnionBotnet(seed=11, config=OnionBotConfig(degree=6, d_min=3, d_max=9))
        net.build(20)

        first = net.broadcast_command("report-status")
        assert first.coverage == 1.0

        # A defender cleans up a quarter of the bots one by one.
        victims = net.active_labels()[:5]
        net.take_down(victims)
        assert net.stats().connected_components == 1

        # Every surviving bot rotates to a fresh address at the period boundary.
        rotated = net.advance_to_next_period()
        assert len(rotated) == 15

        second = net.broadcast_command("simulated-task")
        assert second.coverage == 1.0
        assert second.executed == 15

    def test_defender_view_stays_small_despite_captures(self):
        net = OnionBotnet(seed=12)
        net.build(24)
        operator = HoneypotOperator(rng=random.Random(0))
        for _ in range(2):
            operator.capture_from_botnet(net)
        exposed = operator.total_exposed()
        # Two captures expose at most the captured bots plus their peer lists.
        assert len(exposed) <= 2 + 2 * net.config.d_max
        assert len(exposed) < 24

    def test_hijack_attempts_fail_end_to_end(self):
        net = OnionBotnet(seed=13)
        net.build(12)
        attempt = HijackAttempt()
        assert attempt.inject_unsigned(net).accepted == 0
        assert attempt.inject_self_signed(net).accepted == 0

    def test_rental_flow_end_to_end(self):
        """Mallory rents the botnet to Trudy for a whitelisted command."""
        net = OnionBotnet(seed=14)
        net.build(10)
        now = net.simulator.now
        trudy = KeyPair.from_seed(b"trudy-the-renter")
        token = net.botmaster.rent_out(
            trudy.public, now=now, duration=3600.0, whitelisted_commands=["simulated-task"]
        )
        command = sign_rented_command(
            trudy,
            CommandMessage(
                kind=MessageKind.COMMAND_BROADCAST,
                command="simulated-task",
                issued_at=now,
                nonce="trudy-1",
            ),
        )
        accepted = sum(
            1
            for label in net.active_labels()
            if net.bots[label].process_command(command, now, rental_token=token)
        )
        assert accepted == 10

        # Outside the whitelist (or after expiry) the same renter is refused.
        forbidden = sign_rented_command(
            trudy,
            CommandMessage(
                kind=MessageKind.COMMAND_BROADCAST,
                command="forbidden-task",
                issued_at=now,
                nonce="trudy-2",
            ),
        )
        refused = sum(
            1
            for label in net.active_labels()
            if net.bots[label].process_command(forbidden, now, rental_token=token)
        )
        assert refused == 0


class TestSoapAgainstLiveBotnet:
    def test_soap_contains_the_overlay_of_a_live_botnet(self):
        net = OnionBotnet(seed=15)
        net.build(20)
        attack = SoapAttack(rng=random.Random(1))
        start = net.active_labels()[0]
        result = attack.run_campaign(net.overlay, [start])
        assert result.neutralized
        # Every bot's peer list (graph view) is now clones only (possibly empty
        # when all of a bot's former peers pruned it away while being soaped).
        for label in net.active_labels():
            if label in net.overlay.graph and label != start:
                peers = net.overlay.peers(label)
                assert all(is_clone(peer) for peer in peers)


class TestDeterminism:
    def test_same_seed_reproduces_identical_runs(self):
        def run(seed: int):
            net = OnionBotnet(seed=seed)
            net.build(12)
            report = net.broadcast_command("noop")
            net.take_down(net.active_labels()[:3])
            stats = net.stats()
            return (report.reached, report.envelopes_sent, stats.overlay_edges, stats.max_degree)

        assert run(77) == run(77)

    def test_different_seeds_differ_somewhere(self):
        net_a = OnionBotnet(seed=1)
        net_a.build(12)
        net_b = OnionBotnet(seed=2)
        net_b.build(12)
        onions_a = sorted(net_a.onion_of(label) for label in net_a.active_labels())
        onions_b = sorted(net_b.onion_of(label) for label in net_b.active_labels())
        assert onions_a != onions_b
