"""Graph generators used by the experiments.

The paper's experiments start from k-regular random graphs (k = 5, 10, 15) of
5000 or 15000 nodes.  We implement a pairing-model k-regular generator directly
on :class:`~repro.graphs.adjacency.UndirectedGraph` (so the overlay never needs
``networkx`` at runtime) plus Erdos--Renyi and Barabasi--Albert generators used
for robustness checks and ablations.  Conversion helpers to and from
``networkx`` support cross-validation in the test-suite.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

import networkx as nx

from repro.graphs.adjacency import GraphError, UndirectedGraph


def _resolve_rng(rng: Optional[random.Random], seed: Optional[int]) -> random.Random:
    """Return an RNG from either an explicit instance or a seed."""
    if rng is not None:
        return rng
    return random.Random(seed)


def k_regular_graph(
    n: int,
    k: int,
    *,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    max_attempts: int = 200,
) -> UndirectedGraph:
    """Generate a random simple k-regular graph on ``n`` nodes (0..n-1).

    Uses the configuration (pairing) model with rejection of self-loops and
    multi-edges, restarting on failure.  ``n * k`` must be even and ``k < n``.

    Parameters mirror the paper's setup: ``k_regular_graph(5000, 10)`` builds
    the 10-regular, 5000-node overlay of Figure 5.
    """
    if n <= 0:
        raise GraphError(f"n must be positive, got {n}")
    if k < 0 or k >= n:
        raise GraphError(f"k must satisfy 0 <= k < n, got k={k}, n={n}")
    if (n * k) % 2 != 0:
        raise GraphError(f"n*k must be even for a k-regular graph (n={n}, k={k})")
    rng = _resolve_rng(rng, seed)

    if k == 0:
        return UndirectedGraph(nodes=range(n))

    for _ in range(max_attempts):
        graph = _try_pairing_model(n, k, rng)
        if graph is not None:
            return graph
    # Fall back to networkx's generator, which uses a smarter algorithm and
    # practically always succeeds; convert back to our structure.
    nx_graph = nx.random_regular_graph(k, n, seed=rng.randrange(2**32))
    return from_networkx(nx_graph)


def _try_pairing_model(n: int, k: int, rng: random.Random) -> Optional[UndirectedGraph]:
    """One attempt of the configuration model; ``None`` when it gets stuck."""
    stubs = [node for node in range(n) for _ in range(k)]
    rng.shuffle(stubs)
    graph = UndirectedGraph(nodes=range(n))
    # Greedy matching of stubs with limited local retries.
    while stubs:
        u = stubs.pop()
        placed = False
        for attempt in range(len(stubs)):
            index = rng.randrange(len(stubs))
            v = stubs[index]
            if v != u and not graph.has_edge(u, v):
                stubs.pop(index)
                graph.add_edge(u, v)
                placed = True
                break
        if not placed:
            return None
    if any(graph.degree(node) != k for node in range(n)):
        return None
    return graph


def erdos_renyi_graph(
    n: int,
    p: float,
    *,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> UndirectedGraph:
    """Erdos--Renyi G(n, p) random graph on nodes 0..n-1."""
    if n <= 0:
        raise GraphError(f"n must be positive, got {n}")
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must be in [0, 1], got {p}")
    rng = _resolve_rng(rng, seed)
    graph = UndirectedGraph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def barabasi_albert_graph(
    n: int,
    m: int,
    *,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> UndirectedGraph:
    """Barabasi--Albert preferential-attachment graph (used in ablations)."""
    if m < 1 or m >= n:
        raise GraphError(f"m must satisfy 1 <= m < n, got m={m}, n={n}")
    rng = _resolve_rng(rng, seed)
    graph = UndirectedGraph(nodes=range(m))
    # Start from a star over the first m+1 nodes so every node has degree >= 1.
    graph.add_node(m)
    for node in range(m):
        graph.add_edge(m, node)
    repeated: list[int] = [m] * m + list(range(m))
    for new_node in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        graph.add_node(new_node)
        for target in targets:
            graph.add_edge(new_node, target)
            repeated.append(target)
            repeated.append(new_node)
    return graph


def ring_graph(n: int) -> UndirectedGraph:
    """A simple cycle on ``n`` nodes (used by small worked examples)."""
    if n < 3:
        raise GraphError(f"a ring needs at least 3 nodes, got {n}")
    graph = UndirectedGraph(nodes=range(n))
    for node in range(n):
        graph.add_edge(node, (node + 1) % n)
    return graph


def to_networkx(graph: UndirectedGraph) -> nx.Graph:
    """Convert our adjacency structure into a ``networkx.Graph``."""
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.nodes())
    nx_graph.add_edges_from(graph.edges())
    return nx_graph


def from_networkx(nx_graph: nx.Graph) -> UndirectedGraph:
    """Convert a ``networkx.Graph`` into our adjacency structure."""
    graph = UndirectedGraph(nodes=nx_graph.nodes())
    for u, v in nx_graph.edges():
        if u == v:
            continue
        graph.add_edge(u, v)
    return graph


def relabel(graph: UndirectedGraph, mapping: dict) -> UndirectedGraph:
    """Return a copy of ``graph`` with node ids replaced via ``mapping``."""
    relabeled = UndirectedGraph()
    for node in graph.nodes():
        relabeled.add_node(mapping.get(node, node))
    for u, v in graph.edges():
        relabeled.add_edge(mapping.get(u, u), mapping.get(v, v))
    return relabeled


def induced_on(graph: UndirectedGraph, nodes: Iterable) -> UndirectedGraph:
    """Convenience wrapper around :meth:`UndirectedGraph.subgraph`."""
    return graph.subgraph(nodes)
