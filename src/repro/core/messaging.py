"""C&C message formats and the indistinguishable wire envelope.

Paper section IV-D distinguishes two classes of messages -- from the C&C to
bots (directed at individuals, at a group under a group key, or broadcast) and
from bots to the C&C (the rally-stage key report) -- and imposes two
requirements on how they travel:

* all messages have the same fixed size, as Tor cells do;
* relaying bots (and any observer) cannot tell source, destination or nature
  of a message apart -- the bytes look uniformly random (Elligator).

``CommandMessage`` / ``KeyReport`` model the application-layer content,
including botmaster signatures and expiry; :func:`build_envelope` /
:func:`open_envelope` produce and consume the constant-size, uniform-looking
wire blobs the overlay actually forwards.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import MessageError
from repro.crypto.elligator import decode_uniform, encode_uniform
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.signing import Signature, sign, verify
from repro.crypto.symmetric import SealedBox, open_sealed, seal, seal_to_public, open_from_private

#: Fixed wire size of every envelope, in bytes.  Large enough for any command
#: the simulator issues; chosen as a multiple of the Tor cell payload size.
ENVELOPE_SIZE = 2048
_LENGTH_PREFIX = 4


class MessageKind(enum.Enum):
    """Application-level message types carried inside envelopes."""

    COMMAND_BROADCAST = "command-broadcast"
    COMMAND_DIRECTED = "command-directed"
    COMMAND_GROUP = "command-group"
    MAINTENANCE = "maintenance"
    KEY_REPORT = "key-report"
    HEARTBEAT = "heartbeat"


@dataclass
class CommandMessage:
    """A botmaster (or renter) command.

    ``targets`` is empty for broadcast commands; ``group`` names the group key
    under which a group command is sealed.  ``command`` is a free-form verb the
    execution stage interprets (the simulator ships benign stand-ins such as
    ``"noop"``, ``"report-status"`` or ``"simulated-task"``).
    """

    kind: MessageKind
    command: str
    arguments: Dict[str, str] = field(default_factory=dict)
    targets: List[str] = field(default_factory=list)
    group: Optional[str] = None
    issued_at: float = 0.0
    expires_at: Optional[float] = None
    nonce: str = ""
    signature: Optional[Signature] = None

    # ------------------------------------------------------------------
    # Canonical serialization
    # ------------------------------------------------------------------
    def signing_payload(self) -> bytes:
        """Canonical bytes covered by the signature."""
        body = {
            "kind": self.kind.value,
            "command": self.command,
            "arguments": dict(sorted(self.arguments.items())),
            "targets": sorted(self.targets),
            "group": self.group,
            "issued_at": self.issued_at,
            "expires_at": self.expires_at,
            "nonce": self.nonce,
        }
        return json.dumps(body, sort_keys=True).encode("utf-8")

    def signed_by(self, keypair: KeyPair) -> "CommandMessage":
        """Return a copy of this command signed with ``keypair``."""
        signature = sign(keypair, self.signing_payload())
        return CommandMessage(
            kind=self.kind,
            command=self.command,
            arguments=dict(self.arguments),
            targets=list(self.targets),
            group=self.group,
            issued_at=self.issued_at,
            expires_at=self.expires_at,
            nonce=self.nonce,
            signature=signature,
        )

    def verify_signature(self, expected_signer: PublicKey) -> bool:
        """Whether the command carries a valid signature from ``expected_signer``."""
        if self.signature is None:
            return False
        return verify(expected_signer, self.signing_payload(), self.signature)

    def is_expired(self, now: float) -> bool:
        """Whether the command's validity window has passed."""
        return self.expires_at is not None and now > self.expires_at

    def is_broadcast(self) -> bool:
        """Whether the command addresses the whole botnet."""
        return self.kind is MessageKind.COMMAND_BROADCAST

    def addressed_to(self, onion: str) -> bool:
        """Whether a bot at ``onion`` should execute this command."""
        if self.is_broadcast():
            return True
        if self.kind is MessageKind.COMMAND_GROUP:
            return True  # group membership is decided by key possession
        return onion in self.targets

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize the full command (including signature) for the wire."""
        body = {
            "kind": self.kind.value,
            "command": self.command,
            "arguments": self.arguments,
            "targets": self.targets,
            "group": self.group,
            "issued_at": self.issued_at,
            "expires_at": self.expires_at,
            "nonce": self.nonce,
        }
        if self.signature is not None:
            body["signature"] = {
                "tag": self.signature.tag.hex(),
                "signer": self.signature.signer.material.hex(),
            }
        return json.dumps(body, sort_keys=True).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "CommandMessage":
        """Parse a command from its wire serialization."""
        try:
            body = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise MessageError(f"malformed command message: {exc}") from exc
        signature = None
        if "signature" in body and body["signature"] is not None:
            signature = Signature(
                tag=bytes.fromhex(body["signature"]["tag"]),
                signer=PublicKey(bytes.fromhex(body["signature"]["signer"])),
            )
        try:
            return cls(
                kind=MessageKind(body["kind"]),
                command=body["command"],
                arguments=dict(body.get("arguments", {})),
                targets=list(body.get("targets", [])),
                group=body.get("group"),
                issued_at=float(body.get("issued_at", 0.0)),
                expires_at=body.get("expires_at"),
                nonce=body.get("nonce", ""),
                signature=signature,
            )
        except (KeyError, ValueError) as exc:
            raise MessageError(f"invalid command fields: {exc}") from exc


@dataclass
class KeyReport:
    """Rally-stage report: ``{K_B}_PK_CC`` plus the bot's current address."""

    sealed_bot_key: SealedBox
    onion_address: str
    reported_at: float

    @classmethod
    def create(
        cls,
        bot_key: bytes,
        onion_address: str,
        botmaster_public: PublicKey,
        nonce: bytes,
        reported_at: float,
    ) -> "KeyReport":
        """Seal ``bot_key`` to the botmaster and wrap it in a report."""
        sealed = seal_to_public(botmaster_public.material, bot_key, nonce)
        return cls(sealed_bot_key=sealed, onion_address=onion_address, reported_at=reported_at)

    def open_with(self, botmaster: KeyPair) -> bytes:
        """Recover ``K_B`` as the botmaster."""
        return open_from_private(
            botmaster.private, botmaster.public.material, self.sealed_bot_key
        )

    def to_bytes(self) -> bytes:
        """Serialize the report for the wire."""
        body = {
            "nonce": self.sealed_bot_key.nonce.hex(),
            "ciphertext": self.sealed_bot_key.ciphertext.hex(),
            "tag": self.sealed_bot_key.tag.hex(),
            "onion": self.onion_address,
            "reported_at": self.reported_at,
        }
        return json.dumps(body, sort_keys=True).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "KeyReport":
        """Parse a key report from its wire serialization."""
        try:
            body = json.loads(data.decode("utf-8"))
            return cls(
                sealed_bot_key=SealedBox(
                    nonce=bytes.fromhex(body["nonce"]),
                    ciphertext=bytes.fromhex(body["ciphertext"]),
                    tag=bytes.fromhex(body["tag"]),
                ),
                onion_address=body["onion"],
                reported_at=float(body["reported_at"]),
            )
        except (KeyError, ValueError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise MessageError(f"malformed key report: {exc}") from exc


@dataclass(frozen=True)
class Envelope:
    """A constant-size, uniform-looking wire blob carrying one message."""

    blob: bytes

    def __post_init__(self) -> None:
        if len(self.blob) != ENVELOPE_SIZE:
            raise MessageError(
                f"envelope must be exactly {ENVELOPE_SIZE} bytes, got {len(self.blob)}"
            )

    @property
    def size(self) -> int:
        """Wire size (always :data:`ENVELOPE_SIZE`)."""
        return len(self.blob)


def build_envelope(plaintext: bytes, key: bytes, randomness: bytes) -> Envelope:
    """Seal, pad and whiten ``plaintext`` into a fixed-size envelope.

    ``key`` is the link/group/bot key the recipient shares; ``randomness``
    seeds both the seal nonce and the uniform-encoding prefix (callers draw it
    from a named simulator stream for reproducibility).
    """
    if len(randomness) < 16:
        raise MessageError("randomness must be at least 16 bytes")
    box = seal(key, plaintext, randomness[:16])
    framed = (
        len(box.ciphertext).to_bytes(_LENGTH_PREFIX, "big")
        + box.nonce
        + box.tag
        + box.ciphertext
    )
    # 16-byte whitening prefix is added by encode_uniform.
    max_payload = ENVELOPE_SIZE - 16
    if len(framed) > max_payload:
        raise MessageError(
            f"message too large for a single envelope "
            f"({len(framed)} > {max_payload} bytes)"
        )
    padded = framed + b"\x00" * (max_payload - len(framed))
    blob = encode_uniform(padded, randomness)
    return Envelope(blob=blob)


def open_envelope(envelope: Envelope, key: bytes) -> bytes:
    """Invert :func:`build_envelope`, raising :class:`MessageError` on failure."""
    padded = decode_uniform(envelope.blob)
    length = int.from_bytes(padded[:_LENGTH_PREFIX], "big")
    offset = _LENGTH_PREFIX
    nonce = padded[offset: offset + 16]
    offset += 16
    tag = padded[offset: offset + 32]
    offset += 32
    ciphertext = padded[offset: offset + length]
    if len(ciphertext) != length:
        raise MessageError("envelope framing is corrupt")
    box = SealedBox(nonce=nonce, ciphertext=ciphertext, tag=tag)
    try:
        return open_sealed(key, box)
    except Exception as exc:
        raise MessageError(f"failed to open envelope: {exc}") from exc


def envelope_pair(
    message: CommandMessage | KeyReport,
    key: bytes,
    randomness: bytes,
) -> Tuple[Envelope, bytes]:
    """Convenience: serialize a message and wrap it, returning (envelope, plaintext)."""
    plaintext = message.to_bytes()
    return build_envelope(plaintext, key, randomness), plaintext
