"""Discrete-event simulation engine underpinning the OnionBots reproduction.

Every higher layer (the Tor model, the DDSR overlay, adversaries and defenses)
runs on top of this small, dependency-free engine.  The engine provides:

* :class:`~repro.sim.clock.SimClock` -- a simulated clock measured in seconds.
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.EventQueue` --
  a deterministic priority queue of timestamped callbacks.
* :class:`~repro.sim.engine.Simulator` -- the event loop, owning the clock,
  the queue, seeded randomness and metric collection.
* :class:`~repro.sim.process.PeriodicProcess` -- recurring activities such as
  consensus publication, heartbeats, or address rotation.
* :class:`~repro.sim.rng.RandomStreams` -- named, independently seeded random
  streams so experiments are reproducible component by component.
* :class:`~repro.sim.metrics.MetricRecorder` -- time-series and counter
  collection used by the experiment harness.
* :class:`~repro.sim.trace.TraceLog` -- structured event traces for debugging
  and for the integration tests.
"""

from repro.sim.clock import SimClock
from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.metrics import CounterSet, MetricRecorder, TimeSeries
from repro.sim.process import PeriodicProcess, ProcessState
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceEntry, TraceLog

__all__ = [
    "SimClock",
    "Simulator",
    "Event",
    "EventQueue",
    "MetricRecorder",
    "TimeSeries",
    "CounterSet",
    "PeriodicProcess",
    "ProcessState",
    "RandomStreams",
    "TraceLog",
    "TraceEntry",
]
