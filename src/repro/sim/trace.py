"""Structured trace log.

Traces record *what happened* in a simulation run: a bot rotated its address,
a relay gained the HSDir flag, a SOAP clone was admitted as a peer.  They are
primarily consumed by tests and by the worked examples, which replay or assert
on sequences of events rather than just aggregate metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEntry:
    """One structured trace record."""

    timestamp: float
    category: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)

    def matches(self, category: Optional[str] = None, message_contains: Optional[str] = None) -> bool:
        """Whether this entry matches the given filters."""
        if category is not None and self.category != category:
            return False
        if message_contains is not None and message_contains not in self.message:
            return False
        return True


class TraceLog:
    """Append-only list of :class:`TraceEntry` with simple querying.

    A maximum size can be configured; once full, the oldest entries are
    discarded.  Long-running resilience sweeps disable tracing entirely by
    setting ``enabled=False`` to avoid unbounded memory use.
    """

    def __init__(self, enabled: bool = True, max_entries: int = 100_000) -> None:
        self.enabled = enabled
        self.max_entries = max_entries
        self._entries: List[TraceEntry] = []

    def record(
        self,
        timestamp: float,
        category: str,
        message: str,
        **details: Any,
    ) -> Optional[TraceEntry]:
        """Append a trace entry (no-op when tracing is disabled)."""
        if not self.enabled:
            return None
        entry = TraceEntry(timestamp=timestamp, category=category, message=message, details=details)
        self._entries.append(entry)
        if len(self._entries) > self.max_entries:
            overflow = len(self._entries) - self.max_entries
            del self._entries[:overflow]
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def filter(
        self,
        category: Optional[str] = None,
        message_contains: Optional[str] = None,
        predicate: Optional[Callable[[TraceEntry], bool]] = None,
    ) -> List[TraceEntry]:
        """Entries matching the given category / substring / predicate."""
        results = []
        for entry in self._entries:
            if not entry.matches(category, message_contains):
                continue
            if predicate is not None and not predicate(entry):
                continue
            results.append(entry)
        return results

    def count(self, category: Optional[str] = None, message_contains: Optional[str] = None) -> int:
        """Number of entries matching the filters."""
        return len(self.filter(category, message_contains))

    def last(self, category: Optional[str] = None) -> Optional[TraceEntry]:
        """Most recent entry (optionally restricted to a category)."""
        for entry in reversed(self._entries):
            if category is None or entry.category == category:
                return entry
        return None

    def clear(self) -> None:
        """Drop all recorded entries."""
        self._entries.clear()

    def snapshot_into(self, collector, prefix: str = "trace.") -> None:
        """Snapshot per-category entry counts into an obs collector."""
        from repro.obs.bridge import trace_into

        trace_into(collector, self._entries, prefix)
